// Tests for the synthetic tick generator: determinism, structural validity,
// and the statistical features the pipeline depends on (sector correlation,
// injected outliers, intraday activity shape).
#include <gtest/gtest.h>

#include <cmath>

#include "marketdata/bars.hpp"
#include "marketdata/generator.hpp"
#include "stats/corr_engine.hpp"
#include "stats/pearson.hpp"

namespace mm::md {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.quote_rate = 0.3;  // keep tests fast
  return cfg;
}

TEST(UShape, ElevatedAtOpenAndClose) {
  EXPECT_GT(u_shape(0.0), u_shape(0.5));
  EXPECT_GT(u_shape(1.0), u_shape(0.5));
  EXPECT_NEAR(u_shape(0.0), u_shape(1.0), 1e-12);
  EXPECT_GT(u_shape(0.5), 0.0);
}

TEST(UShape, IntegratesToRoughlyOne) {
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += u_shape((i + 0.5) / n);
  EXPECT_NEAR(sum / n, 1.0, 1e-3);
}

TEST(SyntheticDay, DeterministicForSameSeedAndDay) {
  const auto universe = make_universe(5);
  const auto cfg = small_config();
  const SyntheticDay a(universe, cfg, 0);
  const SyntheticDay b(universe, cfg, 0);
  ASSERT_EQ(a.quotes().size(), b.quotes().size());
  for (std::size_t k = 0; k < a.quotes().size(); ++k) {
    EXPECT_EQ(a.quotes()[k].ts_ms, b.quotes()[k].ts_ms);
    EXPECT_EQ(a.quotes()[k].symbol, b.quotes()[k].symbol);
    EXPECT_DOUBLE_EQ(a.quotes()[k].bid, b.quotes()[k].bid);
    EXPECT_DOUBLE_EQ(a.quotes()[k].ask, b.quotes()[k].ask);
  }
}

TEST(SyntheticDay, DifferentDaysDiffer) {
  const auto universe = make_universe(3);
  const auto cfg = small_config();
  const SyntheticDay a(universe, cfg, 0);
  const SyntheticDay b(universe, cfg, 1);
  EXPECT_NE(a.quotes().size(), b.quotes().size());
}

TEST(SyntheticDay, QuotesTimeSortedAndInSession) {
  const auto universe = make_universe(4);
  const SyntheticDay day(universe, small_config(), 2);
  const Session session;
  TimeMs prev = 0;
  for (const auto& q : day.quotes()) {
    EXPECT_GE(q.ts_ms, prev);
    prev = q.ts_ms;
    EXPECT_TRUE(session.contains(q.ts_ms));
    EXPECT_LT(q.symbol, 4u);
  }
}

TEST(SyntheticDay, QuoteVolumeMatchesRate) {
  const auto universe = make_universe(4);
  GeneratorConfig cfg = small_config();
  cfg.quote_rate = 0.5;
  const SyntheticDay day(universe, cfg, 0);
  const double expected = 4 * 23400 * 0.5;
  EXPECT_NEAR(static_cast<double>(day.quotes().size()), expected, expected * 0.1);
}

TEST(SyntheticDay, PricePathsStayNearBasePrice) {
  const auto universe = make_universe(6);
  const SyntheticDay day(universe, small_config(), 1);
  for (SymbolId i = 0; i < 6; ++i) {
    const auto& path = day.true_path(i);
    ASSERT_EQ(path.size(), 23400u);
    for (double p : {path.front(), path[10000], path.back()}) {
      EXPECT_GT(p, universe.base_price[i] * 0.7);
      EXPECT_LT(p, universe.base_price[i] * 1.4);
    }
  }
}

TEST(SyntheticDay, CleanQuotesBracketTruePath) {
  const auto universe = make_universe(3);
  GeneratorConfig cfg = small_config();
  cfg.bad_tick_rate = 0.0;
  cfg.crossed_rate = 0.0;
  cfg.minor_tick_rate = 0.0;
  const SyntheticDay day(universe, cfg, 0);
  const Session session;
  for (const auto& q : day.quotes()) {
    EXPECT_TRUE(q.plausible());
    const auto sec = static_cast<std::size_t>((q.ts_ms - session.open_ms()) / 1000);
    const double truth = day.true_path(q.symbol)[sec];
    // BAM within ~1% of the true mid (spread + cent rounding).
    EXPECT_NEAR(q.bam(), truth, truth * 0.01);
  }
}

TEST(SyntheticDay, BadTicksInjectedAtConfiguredRate) {
  const auto universe = make_universe(4);
  GeneratorConfig cfg = small_config();
  cfg.bad_tick_rate = 0.01;
  cfg.crossed_rate = 0.002;
  cfg.minor_tick_rate = 0.0;
  const SyntheticDay day(universe, cfg, 0);
  const double rate =
      static_cast<double>(day.corrupted_count()) / static_cast<double>(day.quotes().size());
  EXPECT_NEAR(rate, 0.012, 0.004);
}

TEST(SyntheticDay, NoBadTicksWhenDisabled) {
  const auto universe = make_universe(3);
  GeneratorConfig cfg = small_config();
  cfg.bad_tick_rate = 0.0;
  cfg.crossed_rate = 0.0;
  cfg.minor_tick_rate = 0.0;
  const SyntheticDay day(universe, cfg, 0);
  EXPECT_EQ(day.corrupted_count(), 0u);
}

TEST(SyntheticDay, EpisodeIntensityHeterogeneousButStableAcrossDays) {
  // Per-symbol episode multipliers depend on (seed, symbol) only: the same
  // symbols must be divergence-rich on every day of the month.
  const auto universe = make_universe(8);
  GeneratorConfig cfg = small_config();
  // Episode drift shows up as extra idiosyncratic variance; compare the
  // true-path daily ranges across seeds/days qualitatively via quote counts
  // is too indirect — instead verify determinism: same seed => same paths.
  const SyntheticDay day_a(universe, cfg, 3);
  const SyntheticDay day_b(universe, cfg, 3);
  for (SymbolId i = 0; i < 8; ++i) {
    const auto& pa = day_a.true_path(i);
    const auto& pb = day_b.true_path(i);
    for (std::size_t t = 0; t < pa.size(); t += 997)
      ASSERT_DOUBLE_EQ(pa[t], pb[t]);
  }
}

TEST(SyntheticDay, ChainedDaysFormContinuousHistory) {
  const auto universe = make_universe(4);
  const auto cfg = small_config();
  const SyntheticDay day0(universe, cfg, 0);
  const auto close0 = day0.closing_prices();
  ASSERT_EQ(close0.size(), 4u);

  const SyntheticDay day1(universe, cfg, 1, close0);
  for (SymbolId i = 0; i < 4; ++i) {
    // Day 1 opens within one second's move of day 0's close.
    EXPECT_NEAR(day1.true_path(i).front(), close0[i], close0[i] * 0.01);
  }
  // And an unchained day 1 opens at base price instead.
  const SyntheticDay fresh(universe, cfg, 1);
  EXPECT_NEAR(fresh.true_path(0).front(), universe.base_price[0],
              universe.base_price[0] * 0.01);
}

TEST(SyntheticDay, ChainedDayKeepsSameRandomness) {
  // Chaining changes the level, not the shocks: log-returns of the chained
  // and unchained day are identical.
  const auto universe = make_universe(3);
  const auto cfg = small_config();
  const SyntheticDay base(universe, cfg, 2);
  std::vector<double> opens = {50.0, 75.0, 100.0};
  const SyntheticDay chained(universe, cfg, 2, opens);
  const auto& pa = base.true_path(1);
  const auto& pb = chained.true_path(1);
  for (std::size_t t = 1; t < pa.size(); t += 1234) {
    EXPECT_NEAR(std::log(pa[t] / pa[t - 1]), std::log(pb[t] / pb[t - 1]), 1e-12);
  }
}

TEST(SyntheticDay, SameSectorPairsMoreCorrelatedThanCrossSector) {
  // The factor model must make same-sector pairs the high-correlation
  // candidates the strategy hunts for. Universe of 14: 12 tech + 2 financial.
  const auto universe = make_universe(14);
  GeneratorConfig cfg = small_config();
  cfg.episodes_per_day = 0.0;  // pure factor structure
  const SyntheticDay day(universe, cfg, 0);

  const auto corr_of = [&](SymbolId a, SymbolId b) {
    const auto ra = log_returns(day.true_path(a));
    const auto rb = log_returns(day.true_path(b));
    return stats::pearson(ra, rb);
  };

  // MSFT/IBM (both tech) vs MSFT/BK (tech vs financial).
  const double same1 = corr_of(0, 1);
  const double same2 = corr_of(2, 3);
  const double cross1 = corr_of(0, 12);
  const double cross2 = corr_of(1, 13);
  EXPECT_GT(same1, cross1);
  EXPECT_GT(same2, cross2);
  EXPECT_GT(same1, 0.3);  // genuinely correlated
}

TEST(SyntheticDay, UShapedQuoteArrivals) {
  const auto universe = make_universe(5);
  GeneratorConfig cfg = small_config();
  cfg.quote_rate = 1.0;
  const SyntheticDay day(universe, cfg, 0);
  const Session session;
  // Count quotes in the first, middle and last 30 minutes.
  std::size_t open_count = 0, mid_count = 0, close_count = 0;
  const TimeMs half_hour = 30 * ms_per_minute;
  for (const auto& q : day.quotes()) {
    const TimeMs o = q.ts_ms - session.open_ms();
    if (o < half_hour) ++open_count;
    const TimeMs mid_start = session.duration_ms() / 2 - half_hour / 2;
    if (o >= mid_start && o < mid_start + half_hour) ++mid_count;
    if (o >= session.duration_ms() - half_hour) ++close_count;
  }
  EXPECT_GT(open_count, mid_count * 3 / 2);
  EXPECT_GT(close_count, mid_count * 3 / 2);
}

TEST(ReturnStream, DeterministicAndAllocationShapeStable) {
  const auto universe = make_universe(30);
  const GeneratorConfig cfg;
  ReturnStream a(universe, cfg);
  ReturnStream b(universe, cfg);
  EXPECT_EQ(a.symbols(), 30u);
  EXPECT_EQ(a.steps_per_day(), 390u);  // 6.5h session at 60s intervals
  std::vector<double> ra, rb;
  for (int t = 0; t < 500; ++t) {  // crosses a day boundary
    a.next(ra);
    b.next(rb);
    ASSERT_EQ(ra.size(), 30u);
    ASSERT_EQ(ra, rb) << "step " << t;
  }
}

TEST(ReturnStream, ReturnsHaveSaneScale) {
  const auto universe = make_universe(61);
  GeneratorConfig cfg;
  cfg.bad_tick_rate = 0.0;
  cfg.minor_tick_rate = 0.0;
  ReturnStream stream(universe, cfg);
  std::vector<double> r;
  double sq = 0.0;
  std::size_t count = 0;
  for (int t = 0; t < 390; ++t) {
    stream.next(r);
    for (const double x : r) {
      ASSERT_TRUE(std::isfinite(x));
      sq += x * x;
      ++count;
    }
  }
  // Per-interval vol should sit near the configured per-second vols scaled
  // by sqrt(60): order 1e-3, certainly within (1e-5, 1e-1).
  const double rms = std::sqrt(sq / static_cast<double>(count));
  EXPECT_GT(rms, 1e-5);
  EXPECT_LT(rms, 1e-1);
}

TEST(ReturnStream, SectorStructureSurvivesSampling) {
  // Same-sector pairs must out-correlate cross-sector pairs in the sampled
  // returns, at builtin scale and in the synthetic extension.
  const auto universe = make_universe(120);
  GeneratorConfig cfg;
  cfg.episodes_per_day = 0.0;
  cfg.bad_tick_rate = 0.0;
  cfg.minor_tick_rate = 0.0;
  ReturnStream stream(universe, cfg);
  std::vector<std::vector<double>> history(120);
  std::vector<double> r;
  for (int t = 0; t < 780; ++t) {
    stream.next(r);
    for (std::size_t i = 0; i < r.size(); ++i) history[i].push_back(r[i]);
  }
  const auto corr_of = [&](std::size_t a, std::size_t b) {
    return stats::pearson(history[a], history[b]);
  };
  // MSFT/IBM (tech) vs MSFT/BK (tech/financial); SYN 61/62 share a synthetic
  // sector, 61/90 do not.
  EXPECT_GT(corr_of(0, 1), corr_of(0, 12));
  EXPECT_GT(corr_of(61, 62), corr_of(61, 90));
  EXPECT_GT(corr_of(0, 1), 0.3);
  EXPECT_GT(corr_of(61, 62), 0.3);
}

TEST(ReturnStream, EpisodeRichSymbolsDivergeMore) {
  // The per-symbol episode multipliers are shared with SyntheticDay, so the
  // sampled stream shows the same persistent heterogeneity: symbols with a
  // high multiplier accumulate more drift variance than the factor floor.
  const auto universe = make_universe(61);
  GeneratorConfig cfg;
  cfg.bad_tick_rate = 0.0;
  cfg.minor_tick_rate = 0.0;
  cfg.episode_drift = 0.05;  // make episodes dominate the variance
  ReturnStream with(universe, cfg);
  GeneratorConfig quiet = cfg;
  quiet.episodes_per_day = 0.0;
  ReturnStream without(universe, quiet);
  std::vector<double> r;
  double var_with = 0.0, var_without = 0.0;
  for (int t = 0; t < 780; ++t) {
    with.next(r);
    for (const double x : r) var_with += x * x;
    without.next(r);
    for (const double x : r) var_without += x * x;
  }
  EXPECT_GT(var_with, var_without * 1.5);
}

TEST(ReturnStream, FeedsCorrelationEngineAtScale) {
  // End-to-end smoke at a thousand symbols: one warm window of sampled
  // returns through the Pearson matrix path, allocation-sized buffers only.
  constexpr std::size_t n = 1000;
  const auto universe = make_universe(n);
  const GeneratorConfig cfg;
  ReturnStream stream(universe, cfg, 60.0);
  stats::CorrEngineConfig ecfg;
  ecfg.window = 30;
  stats::CorrelationCalculator calc(ecfg, n);
  std::vector<double> r;
  for (int t = 0; t < 31; ++t) {
    stream.next(r);
    calc.push(r);
  }
  ASSERT_TRUE(calc.ready());
  stats::SymMatrix m;
  calc.matrix_into(m);
  ASSERT_EQ(m.size(), n);
  for (std::size_t i = 0; i < n; i += 97) {
    EXPECT_EQ(m(i, i), 1.0);
    for (std::size_t j = i + 1; j < n; j += 131) {
      EXPECT_GE(m(i, j), -1.0);
      EXPECT_LE(m(i, j), 1.0);
    }
  }
}

}  // namespace
}  // namespace mm::md
