// Sector discovery: the clustering half of the MarketMiner workload ([12]) —
// build the market-wide correlation matrix from one day of ticks and let the
// clustering recover the market's group structure, compared against the
// generator's planted sectors.
//
//   $ ./sector_discovery [--symbols 30] [--clusters 0 (auto)] [--threshold 0.35]
#include <cstdio>

#include "common/cli.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"
#include "stats/cluster.hpp"
#include "stats/corr_engine.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("sector_discovery", "Recover sector structure from tick correlations");
  auto& symbols = cli.add_int("symbols", 30, "universe size (2..61)");
  auto& clusters_arg = cli.add_int("clusters", 0, "target clusters (0 = true count)");
  auto& threshold = cli.add_double("threshold", 0.35, "threshold-graph cut");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.4;
  const md::SyntheticDay day(universe, gen, 0);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);

  // Full-day correlation matrix over a long window.
  stats::CorrEngineConfig cfg;
  cfg.type = stats::Ctype::pearson;
  cfg.window = 390;
  stats::CorrelationCalculator calc(cfg, n);
  std::vector<double> step(n);
  for (std::size_t s = 1; s < bam[0].size(); ++s) {
    for (std::size_t i = 0; i < n; ++i) step[i] = std::log(bam[i][s] / bam[i][s - 1]);
    calc.push(step);
  }
  const auto matrix = calc.matrix();

  const int target = clusters_arg > 0 ? static_cast<int>(clusters_arg)
                                      : static_cast<int>(universe.sector_names.size());
  const auto linkage = stats::single_linkage_clusters(matrix, target);
  const auto graph = stats::threshold_clusters(matrix, threshold);

  std::printf("discovered clusters (single-linkage to %d):\n", target);
  for (const auto& group : linkage.groups()) {
    std::printf("  {");
    for (std::size_t k = 0; k < group.size(); ++k)
      std::printf("%s%s", k ? " " : "", universe.table.name(group[k]).c_str());
    std::printf("}\n");
  }

  std::printf("\ntrue sectors:\n");
  for (std::size_t g = 0; g < universe.sector_names.size(); ++g) {
    std::printf("  %-11s {", universe.sector_names[g].c_str());
    bool first = true;
    for (md::SymbolId i = 0; i < n; ++i) {
      if (universe.sector[i] != static_cast<int>(g)) continue;
      std::printf("%s%s", first ? "" : " ", universe.table.name(i).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  std::printf("\nagreement with truth (Rand index): single-linkage %.3f, "
              "threshold@%.2f %.3f (%d components)\n",
              stats::rand_index(linkage.assignment, universe.sector),
              threshold, stats::rand_index(graph.assignment, universe.sector),
              graph.cluster_count);
  return 0;
}
