// Interval sampling: BAM price series and OHLC bars on the ∆s grid.
//
// The strategy works on a discretized clock (interval index s). BamSampler
// produces, per symbol, the bid-ask-midpoint price at the end of every ∆s
// interval (carrying the last observation forward through quiet intervals,
// as the paper's use of BAM for thinly traded stocks implies). BarAccumulator
// builds classic OHLC bars, the "OHLC Bar Accumulator" component of Fig. 1.
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "marketdata/calendar.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

// Streaming per-symbol end-of-interval BAM sampler.
//
// Feed quotes in time order via observe(); on_interval_end(s) returns the
// price for interval s (last BAM seen at or before the interval's end,
// carried forward if no quote arrived), or nullopt while the symbol has never
// quoted.
class BamSampler {
 public:
  BamSampler(std::size_t symbol_count, const Session& session, std::int64_t delta_s);

  std::int64_t interval_count() const { return smax_; }

  // Observe a (cleaned) quote. Quotes must arrive in non-decreasing time
  // order; out-of-session quotes are ignored.
  void observe(const Quote& quote);

  // Price of `symbol` at the close of interval `s`. Must be called with s
  // non-decreasing and only after all quotes with ts < end(s) were observed.
  std::optional<double> sample(SymbolId symbol, std::int64_t s) const;

  // Sample the whole universe at the close of interval s.
  std::vector<std::optional<double>> sample_all(std::int64_t s) const;

 private:
  Session session_;
  std::int64_t delta_s_;
  std::int64_t smax_;
  std::vector<double> last_bam_;
  std::vector<bool> have_;
};

// Batch helper used by the backtester: a [symbol][interval] matrix of BAM
// prices. Intervals before a symbol's first quote hold its first observed
// price (backfill), so return series start flat rather than with a fake jump.
std::vector<std::vector<double>> sample_bam_series(const std::vector<Quote>& quotes,
                                                   std::size_t symbol_count,
                                                   const Session& session,
                                                   std::int64_t delta_s);

// Streaming OHLC accumulator over ∆s intervals (per symbol). Emits a bar when
// an interval rolls over.
class BarAccumulator {
 public:
  BarAccumulator(std::size_t symbol_count, const Session& session, std::int64_t delta_s);

  // Observe a quote; if this quote starts a new interval for the symbol, the
  // finished bar is returned.
  std::optional<Bar> observe(const Quote& quote);

  // Flush the in-progress bar for every symbol (end of day).
  std::vector<Bar> flush();

 private:
  struct Working {
    bool active = false;
    std::int64_t interval = -1;
    Bar bar;
  };

  std::optional<Bar> roll(Working& w, std::int64_t new_interval, SymbolId symbol);

  Session session_;
  std::int64_t delta_s_;
  std::vector<Working> working_;
};

// Streaming OHLC + volume accumulator over ∆s intervals from trade prints —
// the classical bar source (the quote-driven BarAccumulator above is what the
// high-frequency strategy uses; this one serves the "OHLC Bars" output of
// Fig. 1's bar stage).
class TradeBarAccumulator {
 public:
  TradeBarAccumulator(std::size_t symbol_count, const Session& session,
                      std::int64_t delta_s);

  // Observe a trade; returns the finished bar when the trade opens a new
  // interval for its symbol.
  std::optional<Bar> observe(const Trade& trade);

  std::vector<Bar> flush();

 private:
  struct Working {
    bool active = false;
    std::int64_t interval = -1;
    Bar bar;
  };

  Session session_;
  std::int64_t delta_s_;
  std::vector<Working> working_;
};

// Log-return series from a price series: r[t] = log(p[t] / p[t-1]); output
// has size one less than input. The paper's correlation inputs are the last M
// log-returns per stock (§III).
std::vector<double> log_returns(const std::vector<double>& prices);

}  // namespace mm::md
