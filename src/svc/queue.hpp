// Multi-tenant job queue with fair-share admission.
//
// Jobs wait in per-tenant FIFO lanes. take() picks the next job from the
// tenant with the FEWEST jobs currently running, breaking ties by who was
// served least recently — so one tenant posting 100 jobs cannot starve a
// tenant posting 1, while a lone tenant still gets the whole pool. The
// scheduler reports completions via finished() to keep the running counts
// honest.
//
// shutdown() wakes every blocked take() with nullptr; drain() then hands the
// still-queued jobs back so the scheduler can mark them cancelled — nothing
// is silently dropped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace mm::svc {

class JobQueue {
 public:
  // Enqueue; rejects (returns false) after shutdown().
  bool push(std::shared_ptr<Job> job);

  // Enqueue with per-tenant admission: fails with Errc::capacity when the
  // tenant already has `tenant_limit` jobs queued (0 = unbounded), with
  // Errc::shutdown after shutdown(). Running jobs do not count — the limit
  // bounds queue depth, not concurrency (the worker pool bounds that).
  Status try_push(std::shared_ptr<Job> job, std::size_t tenant_limit);

  // Next job under fair share; blocks while empty. Returns nullptr once
  // shutdown() is called. The job's tenant is counted running until
  // finished().
  std::shared_ptr<Job> take();

  // Decrement the tenant's running count (call once per successful take()).
  void finished(const std::string& tenant);

  // Remove a still-queued job by id (DELETE /jobs/{id} on a queued job).
  // False when the job is not in the queue (already taken or unknown).
  bool remove(const std::string& id);

  void shutdown();
  // Post-shutdown: hand back everything still queued, emptying the lanes.
  std::vector<std::shared_ptr<Job>> drain();

  std::size_t queued() const;

 private:
  struct Lane {
    std::deque<std::shared_ptr<Job>> jobs;
    int running = 0;
    std::uint64_t last_served = 0;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, Lane> lanes_;
  std::uint64_t serve_clock_ = 0;
  std::size_t queued_ = 0;
  bool shutdown_ = false;
};

}  // namespace mm::svc
