file(REMOVE_RECURSE
  "CMakeFiles/test_corr_engine.dir/test_corr_engine.cpp.o"
  "CMakeFiles/test_corr_engine.dir/test_corr_engine.cpp.o.d"
  "test_corr_engine"
  "test_corr_engine.pdb"
  "test_corr_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
