// Deterministic random number generation.
//
// Every experiment in this repo must be bit-for-bit reproducible across runs
// and platforms, so we implement our own generator (xoshiro256++) and our own
// variate transforms instead of relying on std::<distribution>, whose output
// is implementation-defined.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace mm {

// splitmix64: used to expand a single user seed into xoshiro state. Public
// because tests and the data generator use it to derive independent
// per-symbol/per-day stream seeds from one master seed.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ by Blackman & Vigna. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x8d2f7a11c3b5e901ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    have_cached_normal_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be positive.
  std::uint64_t uniform_int(std::uint64_t n) {
    MM_ASSERT(n > 0);
    // Lemire's multiply-shift with rejection for unbiased results.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Marsaglia polar method (deterministic, no libm
  // variance across platforms beyond sqrt/log which are correctly rounded).
  double normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    have_cached_normal_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Bernoulli with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with rate lambda (> 0).
  double exponential(double lambda) {
    MM_ASSERT(lambda > 0.0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  // Student-t with nu degrees of freedom — used to give synthetic returns the
  // fat tails real tick data exhibits. Bailey's polar method.
  double student_t(double nu) {
    MM_ASSERT(nu > 0.0);
    double u, v, w;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      w = u * u + v * v;
    } while (w >= 1.0 || w == 0.0);
    const double c2 = u * u / w;
    const double r2 = nu * (std::pow(w, -2.0 / nu) - 1.0);
    const double t2 = r2 * c2;
    return (u < 0 ? -1.0 : 1.0) * std::sqrt(t2);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace mm
