#include "core/strategy.hpp"

#include <cmath>

namespace mm::core {

const char* to_string(ExitReason reason) {
  switch (reason) {
    case ExitReason::retracement: return "retracement";
    case ExitReason::max_holding: return "max_holding";
    case ExitReason::end_of_day: return "end_of_day";
    case ExitReason::stop_loss: return "stop_loss";
    case ExitReason::correlation_reversion: return "correlation_reversion";
  }
  return "?";
}

ShareRatio size_position(double price_i, double price_j, bool long_i) {
  MM_ASSERT_MSG(price_i > 0.0 && price_j > 0.0, "size_position: non-positive price");
  // The paper states the rule for Pi > Pj; by symmetry we express it as: one
  // share of the higher-priced leg, x shares of the cheaper leg, with x
  // rounded *down* when the expensive leg is long (so the long side still
  // edges ahead) and *up* when the cheap leg is long.
  const bool i_expensive = price_i >= price_j;
  const double ratio = i_expensive ? price_i / price_j : price_j / price_i;
  const bool long_expensive = (long_i == i_expensive);
  const double x = long_expensive ? std::floor(ratio) : std::ceil(ratio);
  const double x_clamped = x < 1.0 ? 1.0 : x;

  double ni, nj;
  if (i_expensive) {
    ni = 1.0;
    nj = x_clamped;
  } else {
    ni = x_clamped;
    nj = 1.0;
  }
  if (!long_i) ni = -ni;
  if (long_i) nj = -nj;
  return {ni, nj};
}

PairStrategy::PairStrategy(const StrategyParams& params, std::int64_t smax)
    : params_(params),
      smax_(smax),
      corr_mean_(static_cast<std::size_t>(params.avg_window)),
      price_hist_i_(static_cast<std::size_t>(params.avg_window) + 1),
      price_hist_j_(static_cast<std::size_t>(params.avg_window) + 1),
      spread_extremes_(static_cast<std::size_t>(params.spread_window)),
      spread_mean_(static_cast<std::size_t>(params.spread_window)) {
  MM_ASSERT_MSG(params.validate().has_value(), "invalid StrategyParams");
  MM_ASSERT_MSG(smax > 0, "smax must be positive");
}

void PairStrategy::step(std::int64_t s, double price_i, double price_j, double corr,
                        bool corr_valid) {
  MM_ASSERT_MSG(s > last_s_, "intervals must be strictly increasing");
  MM_ASSERT_MSG(price_i > 0.0 && price_j > 0.0, "non-positive price");
  last_s_ = s;
  last_price_i_ = price_i;
  last_price_j_ = price_j;

  // Update price/spread windows every interval.
  price_hist_i_.push(price_i);
  price_hist_j_.push(price_j);
  const double spread = price_i - price_j;
  spread_extremes_.update(spread);
  spread_mean_.update(spread);

  // Update the correlation signal (step 1) and divergence freshness (step 2).
  // The average C̄ used for decisions at interval s is the trailing mean over
  // the W intervals before s (computed before pushing C(s)).
  bool fresh_divergence = false;
  bool avg_ready = false;
  double avg_corr = 0.0;
  if (corr_valid) {
    avg_ready = corr_mean_.full();
    if (avg_ready) {
      avg_corr = corr_mean_.mean();
      const bool diverged = corr < avg_corr * (1.0 - params_.divergence);
      diverged_streak_ = diverged ? diverged_streak_ + 1 : 0;
      fresh_divergence =
          diverged && diverged_streak_ <= params_.divergence_window;
    }
    corr_mean_.update(corr);
  } else {
    diverged_streak_ = 0;
  }

  if (open_) {
    check_exit(s, price_i, price_j, corr, corr_valid && avg_ready, avg_corr);
    return;
  }

  // Entry gate (steps 2-3): all windows warm, signal fired, threshold met,
  // and enough time left in the session (ST).
  if (!fresh_divergence) return;
  if (avg_corr <= params_.min_correlation) return;
  if (!price_hist_i_.full() || !spread_mean_.full()) return;
  if (s >= smax_ - params_.no_entry_before_close) return;  // the ST rule

  try_enter(s, price_i, price_j);
}

void PairStrategy::try_enter(std::int64_t s, double price_i, double price_j) {
  // Direction (step 3): the over-performer has the higher W-interval return.
  const double ret_i = price_i / price_hist_i_.oldest() - 1.0;
  const double ret_j = price_j / price_hist_j_.oldest() - 1.0;
  const bool long_i = ret_i < ret_j;  // long the under-performer

  const auto shares = size_position(price_i, price_j, long_i);

  // Retracement level (step 5), fixed at entry from the RT-window spread.
  const double spread_high = spread_extremes_.max();
  const double spread_low = spread_extremes_.min();
  const double spread_avg = spread_mean_.mean();
  const double entry_spread = price_i - price_j;
  const double range = spread_high - spread_low;
  if (entry_spread <= spread_avg) {
    retrace_level_ = spread_low + params_.retracement * range;
    exit_when_spread_above_ = true;
  } else {
    retrace_level_ = spread_high - params_.retracement * range;
    exit_when_spread_above_ = false;
  }

  open_ = true;
  entry_s_ = s;
  // Slippage: each leg is filled at a price worsened in the direction traded.
  const double slip = params_.slippage_frac;
  entry_price_i_ = price_i * (shares.shares_i > 0 ? 1.0 + slip : 1.0 - slip);
  entry_price_j_ = price_j * (shares.shares_j > 0 ? 1.0 + slip : 1.0 - slip);
  shares_i_ = shares.shares_i * params_.lot_size;
  shares_j_ = shares.shares_j * params_.lot_size;
  gross_basis_ = std::abs(shares_i_) * entry_price_i_ + std::abs(shares_j_) * entry_price_j_;
}

double PairStrategy::mark_to_market_return(double price_i, double price_j) const {
  const double pnl = shares_i_ * (price_i - entry_price_i_) +
                     shares_j_ * (price_j - entry_price_j_);
  return pnl / gross_basis_;
}

void PairStrategy::check_exit(std::int64_t s, double price_i, double price_j,
                              double corr, bool corr_valid, double avg_corr) {
  // Retracement cross (step 5).
  const double spread = price_i - price_j;
  if (exit_when_spread_above_ ? spread >= retrace_level_ : spread <= retrace_level_) {
    close_position(s, price_i, price_j, ExitReason::retracement);
    return;
  }

  // Optional absolute stop-loss.
  if (params_.stop_loss > 0.0 &&
      mark_to_market_return(price_i, price_j) <= -params_.stop_loss) {
    close_position(s, price_i, price_j, ExitReason::stop_loss);
    return;
  }

  // Optional correlation reversion: C back inside [C̄(1-d), C̄].
  if (params_.correlation_reversion_exit && corr_valid) {
    const double avg = avg_corr;
    if (corr >= avg * (1.0 - params_.divergence) && corr <= avg) {
      close_position(s, price_i, price_j, ExitReason::correlation_reversion);
      return;
    }
  }

  // Maximum holding period HP.
  if (s - entry_s_ >= params_.max_holding) {
    close_position(s, price_i, price_j, ExitReason::max_holding);
    return;
  }
}

void PairStrategy::close_position(std::int64_t s, double price_i, double price_j,
                                  ExitReason reason) {
  MM_ASSERT(open_);
  const double slip = params_.slippage_frac;
  // Exit fills are worsened opposite to the held direction (selling longs
  // lower, buying back shorts higher).
  const double exit_i = price_i * (shares_i_ > 0 ? 1.0 - slip : 1.0 + slip);
  const double exit_j = price_j * (shares_j_ > 0 ? 1.0 - slip : 1.0 + slip);

  Trade t;
  t.entry_interval = entry_s_;
  t.exit_interval = s;
  t.entry_price_i = entry_price_i_;
  t.entry_price_j = entry_price_j_;
  t.exit_price_i = exit_i;
  t.exit_price_j = exit_j;
  t.shares_i = shares_i_;
  t.shares_j = shares_j_;
  t.gross_basis = gross_basis_;
  const double costs =
      params_.cost_per_share * 2.0 * (std::abs(shares_i_) + std::abs(shares_j_));
  t.pnl = shares_i_ * (exit_i - entry_price_i_) + shares_j_ * (exit_j - entry_price_j_) -
          costs;
  t.trade_return = t.pnl / t.gross_basis;
  t.exit_reason = reason;
  trades_.push_back(t);

  open_ = false;
  // A divergence that is still running must not instantly re-trigger.
  diverged_streak_ = params_.divergence_window + 1;
}

void PairStrategy::finish() {
  if (!open_) return;
  close_position(last_s_, last_price_i_, last_price_j_, ExitReason::end_of_day);
}

}  // namespace mm::core
