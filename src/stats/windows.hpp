// Lockstep return windows for market-wide correlation.
//
// In the integrated engine every symbol produces exactly one log-return per
// ∆s interval, so all M-point windows advance together. ReturnWindows holds
// the last M returns per symbol plus the running sums that make incremental
// Pearson O(1) per pair per step: per-symbol Σx and Σx², and (optionally)
// per-pair Σ x_i x_j.
//
// Two bulk kernels serve the matrix engines:
//   * unwrap_all — unwraps every symbol's ring buffer into one contiguous
//     time-ordered arena, O(n·M) per step, so per-pair estimators (Maronna)
//     read plain `const double*` views instead of paying a ring-buffer copy
//     per pair (O(n²·M) per step).
//   * pearson_matrix — fills a whole SymMatrix by walking the packed cross-
//     sum triangle and the packed output triangle linearly, hoisting the
//     per-symbol variance terms; entries are bit-identical to pearson(i, j).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "stats/sym_matrix.hpp"

namespace mm::stats {

// Exact-rebuild cadence for incremental running sums: every this many pushes
// the sums are recomputed from the buffered window, bounding floating-point
// drift. One shared policy for every sliding accumulator (ReturnWindows,
// SlidingPearson).
inline constexpr std::size_t kRebuildInterval = 8192;

class ReturnWindows {
 public:
  // `track_cross_sums` maintains the O(n²) per-pair Σxy table (needed for
  // incremental Pearson; pure-Maronna engines skip it).
  ReturnWindows(std::size_t symbols, std::size_t window, bool track_cross_sums);

  std::size_t symbols() const { return symbols_; }
  std::size_t window() const { return window_; }
  bool tracks_cross_sums() const { return !cross_.packed().empty(); }

  // Advance every window by one step; `returns` has one entry per symbol.
  void push(const std::vector<double>& returns);

  // True once `window` steps have been pushed.
  bool ready() const { return count_ >= window_; }
  std::size_t steps() const { return count_; }

  // Copy symbol i's window (oldest -> newest) into out[0..window).
  void copy_window(std::size_t symbol, double* out) const;

  // Unwrap every symbol's window into `arena` (size symbols·window, row-major:
  // symbol i occupies arena[i·window .. (i+1)·window), oldest -> newest).
  // One O(n·M) pass shared by all pairs of the step.
  void unwrap_all(double* arena) const;

  // True when symbol i's window holds one identical value in every slot —
  // zero dispersion, which running sums cannot detect through their own
  // roundoff residue. Tracked via value run lengths, O(1).
  bool constant_window(std::size_t symbol) const {
    return run_length_[symbol] >= window_;
  }

  double sum(std::size_t symbol) const { return sum_[symbol]; }
  double sum_sq(std::size_t symbol) const { return sum_sq_[symbol]; }
  double cross_sum(std::size_t i, std::size_t j) const;

  // Incremental windowed Pearson from the running sums. Requires ready() and
  // cross-sum tracking.
  double pearson(std::size_t i, std::size_t j) const;

  // Full-matrix Pearson: every entry equals pearson(i, j) bit-for-bit, but
  // computed by one linear walk over the packed triangles with per-symbol
  // variances hoisted out of the inner loop. Diagonal is set to 1. Requires
  // ready() and cross-sum tracking.
  void pearson_matrix(SymMatrix& out) const;

 private:
  void rebuild_sums();

  std::size_t symbols_;
  std::size_t window_;
  std::size_t head_ = 0;   // slot that the next push writes
  std::size_t count_ = 0;  // total pushes so far
  std::vector<double> data_;  // [symbol * window + slot]
  std::vector<double> sum_, sum_sq_;
  // Run length of identical trailing values per symbol: a run >= window means
  // the window is exactly constant (zero variance), which running sums cannot
  // detect reliably through their own roundoff residue.
  std::vector<double> last_value_;
  std::vector<std::size_t> run_length_;
  // Scratch reused by push(): the evicted column, staged so the cross-sum
  // update can fuse eviction and insertion into one pass over the triangle.
  std::vector<double> evict_scratch_;
  // Scratch reused by pearson_matrix(): per-symbol variance + degeneracy.
  // Degeneracy is stored as 0.0/1.0 doubles so the SIMD row kernel can load
  // and mask it without a widening conversion.
  mutable std::vector<double> variance_scratch_;
  mutable std::vector<double> degenerate_scratch_;
  SymMatrix cross_;  // Σ x_i x_j, including i == j on the diagonal (== sum_sq)
};

}  // namespace mm::stats
