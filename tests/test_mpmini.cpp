// Tests for the mpmini message-passing runtime: point-to-point semantics,
// envelope matching, ordering, probing, requests and communicator split.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"
#include "mpmini/serde.hpp"

namespace mm::mpi {
namespace {

TEST(Environment, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<int> rank_mask{0};
  Environment::run(4, [&](Comm& comm) {
    ++count;
    rank_mask |= 1 << comm.rank();
    EXPECT_EQ(comm.size(), 4);
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(rank_mask.load(), 0b1111);
}

TEST(Environment, PropagatesRankException) {
  EXPECT_THROW(Environment::run(2,
                                [&](Comm& comm) {
                                  if (comm.rank() == 1)
                                    throw std::runtime_error("rank 1 died");
                                }),
               std::runtime_error);
}

TEST(PointToPoint, RoundTrip) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 5, 99);
      EXPECT_EQ(comm.recv_value<int>(1, 6), 100);
    } else {
      const int v = comm.recv_value<int>(0, 5);
      comm.send_value<int>(0, 6, v + 1);
    }
  });
}

TEST(PointToPoint, PerSourceFifoOrder) {
  Environment::run(2, [](Comm& comm) {
    constexpr int n = 500;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
    } else {
      for (int i = 0; i < n; ++i) EXPECT_EQ(comm.recv_value<int>(0, 1), i);
    }
  });
}

TEST(PointToPoint, TagSelectivity) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 10, 1);
      comm.send_value<int>(1, 20, 2);
    } else {
      // Receive tag 20 first even though tag 10 arrived first.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(PointToPoint, WildcardSourceReportsActualEnvelope) {
  Environment::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      int seen_mask = 0;
      for (int k = 0; k < 2; ++k) {
        RecvStatus status;
        const int v = comm.recv_value<int>(any_source, any_tag, &status);
        EXPECT_EQ(v, status.source * 10);
        EXPECT_EQ(status.tag, status.source);
        seen_mask |= 1 << status.source;
      }
      EXPECT_EQ(seen_mask, 0b110);
    } else {
      comm.send_value<int>(0, comm.rank(), comm.rank() * 10);
    }
  });
}

TEST(PointToPoint, VectorPayload) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> xs(1000);
      std::iota(xs.begin(), xs.end(), 0.0);
      comm.send_span(1, 3, xs.data(), xs.size());
    } else {
      const auto xs = comm.recv_elems<double>(0, 3);
      ASSERT_EQ(xs.size(), 1000u);
      EXPECT_DOUBLE_EQ(xs[999], 999.0);
    }
  });
}

TEST(Requests, IrecvCompletesOnDelivery) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 7);
      comm.send_value<int>(1, 8, 0);  // tell peer to go
      auto msg = req.wait();
      ASSERT_EQ(msg.payload.size(), sizeof(int));
      int v;
      std::memcpy(&v, msg.payload.data(), sizeof(int));
      EXPECT_EQ(v, 123);
    } else {
      (void)comm.recv(0, 8);
      comm.send_value<int>(0, 7, 123);
    }
  });
}

TEST(Requests, IsendIsBornComplete) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.isend(1, 1, {1, 2, 3});
      EXPECT_TRUE(req.test());
      req.wait();
    } else {
      EXPECT_EQ(comm.recv(0, 1).size(), 3u);
    }
  });
}

TEST(Probe, ReportsWithoutConsuming) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<double>(1, 4, 2.5);
    } else {
      const auto status = comm.probe(0, 4);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 4);
      EXPECT_EQ(status.byte_count, sizeof(double));
      // Message still there.
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 4), 2.5);
    }
  });
}

TEST(Probe, IprobeNegativeThenPositive) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.iprobe(1, 9, nullptr));
      comm.send_value<int>(1, 2, 0);  // release peer
      (void)comm.recv(1, 9);
    } else {
      (void)comm.recv(0, 2);
      comm.send_value<int>(0, 9, 1);
    }
  });
}

TEST(Split, GroupsByColorOrdersByKey) {
  Environment::run(4, [](Comm& comm) {
    // Even ranks -> color 0, odd -> color 1; key reverses order.
    Comm sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 2);
    // Higher parent rank got lower key, so it is rank 0 in the subgroup.
    const int expected_rank = comm.rank() >= 2 ? 0 : 1;
    EXPECT_EQ(sub.rank(), expected_rank);

    // Traffic stays inside the subgroup.
    if (sub.rank() == 0) {
      sub.send_value<int>(1, 1, comm.rank());
    } else {
      const int from = sub.recv_value<int>(0, 1);
      EXPECT_EQ(from % 2, comm.rank() % 2);
    }
  });
}

TEST(Duplicate, SeparatesTrafficFromParent) {
  Environment::run(2, [](Comm& comm) {
    Comm dup = comm.duplicate();
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      dup.send_value<int>(1, 1, 20);
    } else {
      // Same (source, tag) but different communicators must not cross-match.
      EXPECT_EQ(dup.recv_value<int>(0, 1), 20);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(Serde, RoundTripsMixedPayload) {
  Packer packer;
  packer.put<int>(7);
  packer.put<double>(2.5);
  packer.put_string("hello world");
  packer.put_vector(std::vector<float>{1.f, 2.f, 3.f});
  const auto bytes = packer.take();

  Unpacker unpacker(bytes);
  EXPECT_EQ(unpacker.get<int>(), 7);
  EXPECT_DOUBLE_EQ(unpacker.get<double>(), 2.5);
  EXPECT_EQ(unpacker.get_string(), "hello world");
  const auto v = unpacker.get_vector<float>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_FLOAT_EQ(v[2], 3.f);
  EXPECT_TRUE(unpacker.exhausted());
}

TEST(SendRecv, SimultaneousExchangeDoesNotDeadlock) {
  Environment::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<std::uint8_t> mine = {static_cast<std::uint8_t>(comm.rank())};
    const auto got = comm.sendrecv(peer, 3, mine, peer, 3);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<std::uint8_t>(peer));
  });
}

TEST(SendRecv, RingRotation) {
  constexpr int n = 5;
  Environment::run(n, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<std::uint8_t> token = {static_cast<std::uint8_t>(comm.rank())};
    // Rotate the token all the way around the ring.
    for (int step = 0; step < comm.size(); ++step)
      token = comm.sendrecv(next, 1, std::move(token), prev, 1);
    EXPECT_EQ(token[0], static_cast<std::uint8_t>(comm.rank()));
  });
}

TEST(WaitAll, CollectsEveryMessage) {
  Environment::run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      for (int src = 1; src < 4; ++src) requests.push_back(comm.irecv(src, 9));
      comm.barrier();
      auto messages = wait_all(requests);
      ASSERT_EQ(messages.size(), 3u);
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(messages[i].source, static_cast<int>(i) + 1);
    } else {
      comm.barrier();
      comm.send_value<int>(0, 9, comm.rank());
    }
  });
}

TEST(WaitAny, ReturnsACompletedRequest) {
  Environment::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      requests.push_back(comm.irecv(1, 5));
      requests.push_back(comm.irecv(2, 5));
      // Only rank 2 sends at first.
      comm.send_value<int>(2, 6, 0);
      Message msg;
      const auto idx = wait_any(requests, &msg);
      EXPECT_EQ(idx, 1u);
      EXPECT_EQ(msg.source, 2);
      // Now release rank 1 and drain the other request.
      comm.send_value<int>(1, 6, 0);
      (void)requests[0].wait();
    } else if (comm.rank() == 1) {
      (void)comm.recv(0, 6);
      comm.send_value<int>(0, 5, 1);
    } else {
      (void)comm.recv(0, 6);
      comm.send_value<int>(0, 5, 2);
    }
  });
}

TEST(Mailbox, ManyToOneStress) {
  constexpr int producers = 7;
  constexpr int per_producer = 200;
  Environment::run(producers + 1, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> next(producers + 1, 0);
      for (int k = 0; k < producers * per_producer; ++k) {
        RecvStatus status;
        const int v = comm.recv_value<int>(any_source, 1, &status);
        // Per-source FIFO even under contention.
        EXPECT_EQ(v, next[static_cast<std::size_t>(status.source)]++);
      }
    } else {
      for (int i = 0; i < per_producer; ++i) comm.send_value<int>(0, 1, i);
    }
  });
}

// --- deadline variants ------------------------------------------------------

TEST(Deadline, RecvForTimesOutWithTypedError) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const auto result = comm.recv_for(std::chrono::milliseconds{30}, 1, 7);
      ASSERT_FALSE(result.has_value());
      EXPECT_EQ(result.error().code, Errc::timeout);
    }
    comm.barrier();
  });
}

TEST(Deadline, RecvForReturnsPayloadOnArrival) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      RecvStatus status;
      const auto result =
          comm.recv_for(std::chrono::milliseconds{30000}, any_source, any_tag, &status);
      ASSERT_TRUE(result.has_value());
      ASSERT_EQ(result->size(), 1u);
      EXPECT_EQ(result->front(), 42);
      EXPECT_EQ(status.source, 1);
      EXPECT_EQ(status.tag, 9);
    } else {
      comm.send(0, 9, {42});
    }
  });
}

TEST(Deadline, TimedOutRecvDoesNotSwallowLaterMessages) {
  // Regression guard for ticket cancellation: a receive abandoned on timeout
  // must be withdrawn, or the message arriving later completes a ticket
  // nobody is waiting on and is lost to all future receives.
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      ASSERT_FALSE(comm.recv_for(std::chrono::milliseconds{30}, 1, 5).has_value());
      comm.barrier();  // now let rank 1 send
      EXPECT_EQ(comm.recv_value<int>(1, 5), 1);
      EXPECT_EQ(comm.recv_value<int>(1, 5), 2);
    } else {
      comm.barrier();
      comm.send_value<int>(0, 5, 1);
      comm.send_value<int>(0, 5, 2);
    }
  });
}

TEST(Deadline, RequestWaitForTimesOutThenCompletes) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Request req = comm.irecv(1, 3);
      const auto early = req.wait_for(std::chrono::milliseconds{30});
      ASSERT_FALSE(early.has_value());
      EXPECT_EQ(early.error().code, Errc::timeout);
      comm.barrier();
      const auto late = req.wait_for(std::chrono::milliseconds{30000});
      ASSERT_TRUE(late.has_value());
      ASSERT_EQ(late->payload.size(), 1u);
      EXPECT_EQ(late->payload.front(), 7);
    } else {
      comm.barrier();
      comm.send(0, 3, {7});
    }
  });
}

TEST(Deadline, ProbeForTimesOutAndThenFinds) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const auto missing = comm.probe_for(std::chrono::milliseconds{30}, 1, 4);
      ASSERT_FALSE(missing.has_value());
      EXPECT_EQ(missing.error().code, Errc::timeout);
      comm.barrier();
      const auto found = comm.probe_for(std::chrono::milliseconds{30000}, 1, 4);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(found->tag, 4);
      EXPECT_EQ(found->byte_count, 3u);
      EXPECT_EQ(comm.recv(1, 4).size(), 3u);
    } else {
      comm.barrier();
      comm.send(0, 4, {1, 2, 3});
    }
  });
}

// --- probe/recv matching contract -------------------------------------------

TEST(ProbeRace, ProbedMessageIsReservedForTheProbingThread) {
  // Regression for the probe -> recv steal: a message reported by a blocking
  // probe must go to the probing thread even if another thread posts a
  // wildcard receive in between.
  Mailbox box;
  Message first;
  first.source = 0;
  first.tag = 7;
  first.comm_id = 1;
  first.sequence = 0;
  first.payload = {1};
  box.deliver(first);

  const RecvStatus st = box.probe(1, any_source, any_tag);
  EXPECT_EQ(st.tag, 7);

  // A wildcard receive from ANOTHER thread must not see the reserved message.
  std::shared_ptr<RecvTicket> thief;
  std::thread other([&] { thief = box.post_recv(1, any_source, any_tag); });
  other.join();
  EXPECT_FALSE(box.test(thief));

  // The probing thread's own receive consumes exactly the probed message.
  auto mine = box.post_recv(1, st.source, st.tag);
  ASSERT_TRUE(box.test(mine));
  EXPECT_EQ(box.wait(mine).payload.front(), 1);

  // The thief's pending receive is served by the NEXT delivery.
  Message second = first;
  second.sequence = 1;
  second.payload = {2};
  box.deliver(second);
  ASSERT_TRUE(box.test(thief));
  EXPECT_EQ(box.wait(thief).payload.front(), 2);
}

TEST(ProbeRace, StressProbeThenRecvAlwaysCompletesImmediately) {
  // Under the reservation contract, a receive posted right after a blocking
  // probe is ALWAYS satisfied on the spot — a concurrent wildcard consumer
  // can no longer snatch the probed message.
  Mailbox box;
  constexpr int prober_share = 150;
  constexpr int thief_share = 150;

  std::thread producer([&] {
    for (int i = 0; i < prober_share + thief_share; ++i) {
      Message m;
      m.source = 0;
      m.tag = 3;
      m.comm_id = 1;
      m.sequence = static_cast<std::uint64_t>(i);
      m.payload = {static_cast<std::uint8_t>(i & 0xff)};
      box.deliver(m);
    }
  });
  std::thread thief([&] {
    for (int i = 0; i < thief_share; ++i) (void)box.wait(box.post_recv(1, 0, 3));
  });

  int immediate = 0;
  for (int i = 0; i < prober_share; ++i) {
    const RecvStatus st = box.probe(1, any_source, any_tag);
    auto ticket = box.post_recv(1, st.source, st.tag);
    if (box.test(ticket)) ++immediate;
    (void)box.wait(ticket);
  }
  producer.join();
  thief.join();
  EXPECT_EQ(immediate, prober_share);
}

// --- fault injection --------------------------------------------------------

TEST(FaultPlan, DecisionsAreDeterministicPerEnvelope) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.1;

  int drops = 0;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    Message m;
    m.source = 0;
    m.tag = 2;
    m.comm_id = 1;
    m.sequence = seq;
    const auto a = plan.decide(m, 1);
    const auto b = plan.decide(m, 1);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.duplicate, b.duplicate);
    EXPECT_EQ(a.delay.count(), b.delay.count());
    if (a.drop) ++drops;
  }
  // The hash behaves like the configured Bernoulli rate.
  EXPECT_GT(drops, 200);
  EXPECT_LT(drops, 400);
}

TEST(FaultPlan, ReservedTagsAreNeverFaulted) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 1.0;  // drop everything... except collective traffic
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    Message m;
    m.source = 0;
    m.tag = reserved_tag_base + static_cast<int>(seq);
    m.comm_id = 1;
    m.sequence = seq;
    const auto d = plan.decide(m, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay.count(), 0);
  }
}

TEST(FaultPlan, DropsAreAppliedAndRunToRunDeterministic) {
  constexpr int n = 200;
  const auto run_once = [] {
    FaultPlan plan;
    plan.seed = 99;
    plan.drop_prob = 0.5;
    int received = 0;
    Environment::run(
        2,
        [&](Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
            comm.barrier();
          } else {
            comm.barrier();  // all surviving sends are already queued
            while (comm.iprobe(0, 1)) {
              (void)comm.recv(0, 1);
              ++received;
            }
          }
        },
        plan);
    return received;
  };

  const int first = run_once();
  EXPECT_GT(first, 0);
  EXPECT_LT(first, n);
  EXPECT_EQ(run_once(), first);  // same seed, same envelopes, same fault set
}

TEST(FaultPlan, DuplicatesDeliverTwice) {
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_prob = 1.0;
  int received = 0;
  Environment::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < 10; ++i) comm.send_value<int>(1, 1, i);
          comm.barrier();
        } else {
          comm.barrier();
          while (comm.iprobe(0, 1)) {
            (void)comm.recv(0, 1);
            ++received;
          }
        }
      },
      plan);
  EXPECT_EQ(received, 20);
}

TEST(FaultPlan, KilledRankThrowsAndStaysDead) {
  FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_at_op = 3;  // two sends succeed, the third operation kills
  std::vector<int> got;
  EXPECT_THROW(
      Environment::run(
          2,
          [&](Comm& comm) {
            if (comm.rank() == 1) {
              comm.send_value<int>(0, 1, 10);
              comm.send_value<int>(0, 1, 11);
              comm.send_value<int>(0, 1, 12);  // never delivered: rank dies here
            } else {
              got.push_back(comm.recv_value<int>(1, 1));
              got.push_back(comm.recv_value<int>(1, 1));
            }
          },
          plan),
      RankKilled);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[1], 11);
}

TEST(FaultPlan, DeadRankCannotSendDyingBreath) {
  // Every operation at or past the kill step throws — including attempts to
  // catch the first throw and "say goodbye".
  FaultPlan plan;
  plan.kill_rank = 0;
  plan.kill_at_op = 1;
  EXPECT_THROW(Environment::run(
                   1,
                   [&](Comm& comm) {
                     try {
                       comm.send_value<int>(0, 1, 1);
                     } catch (const RankKilled&) {
                       comm.send_value<int>(0, 1, 2);  // throws again
                     }
                   },
                   plan),
               RankKilled);
}

TEST(FaultPlan, DelayOnlySlowsButLosesNothing) {
  FaultPlan plan;
  plan.seed = 11;
  plan.delay_prob = 0.5;
  plan.delay = std::chrono::microseconds{200};
  Environment::run(
      2,
      [](Comm& comm) {
        constexpr int n = 50;
        if (comm.rank() == 0) {
          for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
        } else {
          for (int i = 0; i < n; ++i) EXPECT_EQ(comm.recv_value<int>(0, 1), i);
        }
      },
      plan);
}

}  // namespace
}  // namespace mm::mpi
