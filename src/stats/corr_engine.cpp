#include "stats/corr_engine.hpp"

#include "mpmini/collectives.hpp"
#include "obs/trace.hpp"
#include "stats/psd.hpp"

namespace mm::stats {
namespace {

// Warm-start state is only materialized for the robust measures.
std::size_t warm_slots(const CorrEngineConfig& config, std::size_t symbols) {
  if (!config.warm_start || config.type == Ctype::pearson) return 0;
  return symbols * (symbols - 1) / 2;
}

// The unwrap arena serves the Maronna/Combined per-pair kernels; pure
// Pearson engines never read it.
std::size_t arena_size(const CorrEngineConfig& config, std::size_t symbols) {
  return config.type == Ctype::pearson ? 0 : symbols * config.window;
}

}  // namespace

CorrelationCalculator::CorrelationCalculator(const CorrEngineConfig& config,
                                             std::size_t symbols)
    : config_(config),
      // Cross sums are only needed for Pearson (and Combined's Pearson half).
      windows_(symbols, config.window, config.type != Ctype::maronna),
      unwrap_(arena_size(config, symbols)),
      warm_(warm_slots(config, symbols), config.maronna,
            config.warm_restart_interval) {}

void CorrelationCalculator::push(const std::vector<double>& returns) {
  windows_.push(returns);
  warm_.advance();
}

void CorrelationCalculator::ensure_unwrapped() const {
  if (unwrap_step_ == windows_.steps() && unwrap_step_ > 0) return;
  windows_.unwrap_all(unwrap_.data());
  if (config_.warm_start) {
    // Per-symbol MAD-degeneracy flags, computed once per step so the warm
    // estimator doesn't rescan the windows for every pair (n scans vs n²/2).
    mad_zero_.resize(windows_.symbols());
    for (std::size_t s = 0; s < windows_.symbols(); ++s)
      mad_zero_[s] = mad_is_zero(window_view(s), windows_.window()) ? 1 : 0;
  }
  unwrap_step_ = windows_.steps();
}

double CorrelationCalculator::pair(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(ready(), "correlation requested before window is full");
  if (config_.type == Ctype::pearson) return windows_.pearson(i, j);

  ensure_unwrapped();
  const double* x = window_view(i);
  const double* y = window_view(j);
  const std::size_t m = windows_.window();

  double robust;
  if (config_.warm_start) {
    const bool degenerate = mad_zero_[i] != 0 || mad_zero_[j] != 0;
    robust = warm_.estimate(pair_slot(symbols(), i, j), x, y, m, degenerate);
  } else {
    robust = maronna(x, y, m, config_.maronna);
  }

  if (config_.type == Ctype::maronna) return robust;
  return combine(windows_.pearson(i, j), robust);
}

SymMatrix CorrelationCalculator::matrix() const {
  const std::size_t n = symbols();
  SymMatrix m(n, 0.0);
  if (config_.type == Ctype::pearson) {
    windows_.pearson_matrix(m);
  } else {
    m.fill_diagonal(1.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) m.set(i, j, pair(i, j));
  }
  if (config_.repair_psd && !is_psd(m)) m = nearest_psd_correlation(m);
  return m;
}

ParallelCorrelationEngine::ParallelCorrelationEngine(mpi::Comm& comm,
                                                     const CorrEngineConfig& config,
                                                     std::size_t symbols,
                                                     obs::Registry* registry)
    : comm_(comm), calc_(config, symbols), pairs_(all_pairs(symbols)) {
  obs::Registry& reg = registry != nullptr ? *registry : obs::Registry::global();
  h_broadcast_ = &reg.histogram("corr.step.broadcast_ns");
  h_compute_ = &reg.histogram("corr.step.compute_ns");
  h_exchange_ = &reg.histogram("corr.step.exchange_ns");
  h_assemble_ = &reg.histogram("corr.step.assemble_ns");
  // Contiguous block shards, balanced to within one pair: the first `rem`
  // ranks take one extra.
  const auto world = static_cast<std::size_t>(comm.size());
  const std::size_t base = pairs_.size() / world;
  const std::size_t rem = pairs_.size() % world;
  offsets_.resize(world + 1);
  offsets_[0] = 0;
  for (std::size_t r = 0; r < world; ++r)
    offsets_[r + 1] = offsets_[r] + base + (r < rem ? 1 : 0);
  mine_.reserve(local_pair_count());
}

SymMatrix ParallelCorrelationEngine::step(const std::vector<double>& returns) {
  // Rank 0's return vector is authoritative; everyone mirrors the windows so
  // no window state ever needs to move.
  {
    obs::ObsSpan span(nullptr, "corr.broadcast", h_broadcast_);
    auto r = mpi::bcast_vector(comm_, returns, 0);
    calc_.push(r);
  }

  const std::size_t n = calc_.symbols();
  if (!calc_.ready()) return SymMatrix{};

  // Compute my block of the canonical pair order.
  {
    obs::ObsSpan span(nullptr, "corr.compute", h_compute_);
    const auto rank = static_cast<std::size_t>(comm_.rank());
    mine_.clear();
    for (std::size_t k = offsets_[rank]; k < offsets_[rank + 1]; ++k)
      mine_.push_back(calc_.pair(pairs_[k].i, pairs_[k].j));
  }

  // Exchange shards; every rank assembles the full matrix.
  std::vector<std::vector<double>> shards;
  {
    obs::ObsSpan span(nullptr, "corr.exchange", h_exchange_);
    shards = mpi::allgather_vectors(comm_, mine_);
  }

  obs::ObsSpan span(nullptr, "corr.assemble", h_assemble_);
  SymMatrix m(n, 0.0);
  m.fill_diagonal(1.0);
  const auto world = static_cast<std::size_t>(comm_.size());
  for (std::size_t owner = 0; owner < world; ++owner) {
    const std::vector<double>& shard = shards[owner];
    const std::size_t begin = offsets_[owner];
    for (std::size_t k = begin; k < offsets_[owner + 1]; ++k)
      m.set(pairs_[k].i, pairs_[k].j, shard[k - begin]);
  }
  if (calc_.config().repair_psd && !is_psd(m)) m = nearest_psd_correlation(m);
  return m;
}

}  // namespace mm::stats
