#include "engine/pipeline.hpp"

#include <memory>

#include "common/timer.hpp"
#include "dagflow/context.hpp"
#include "dagflow/graph.hpp"
#include "marketdata/generator.hpp"

namespace mm::engine {

PipelineResult run_pipeline(const PipelineConfig& config, const md::Universe& universe,
                            std::vector<md::Quote> quotes) {
  MM_ASSERT_MSG(!config.strategies.empty(), "pipeline needs at least one strategy");
  const auto& base = config.strategies.front();
  for (const auto& s : config.strategies) {
    MM_ASSERT_MSG(s.delta_s == base.delta_s && s.corr_window == base.corr_window,
                  "all pipeline strategies must share (delta_s, M); see DESIGN.md");
    MM_ASSERT(s.validate().has_value());
  }
  MM_ASSERT(universe.table.size() == config.symbols);

  const md::Session session;
  const std::int64_t smax = session.interval_count(base.delta_s);
  bool need_maronna = false;
  for (const auto& s : config.strategies)
    if (s.ctype != stats::Ctype::pearson) need_maronna = true;

  const auto quotes_in = static_cast<std::uint64_t>(
      config.day != nullptr ? config.day->size() : quotes.size());
  MM_ASSERT_MSG(config.corr_store == nullptr || config.correlation_replicas == 1,
                "correlation memoization requires the single-rank stage");
  const int k = static_cast<int>(config.strategies.size());
  const bool clustering = config.cluster_every > 0;
  // Correlation fan-out: one port per strategy, plus the clustering branch.
  const int corr_fan_out = k + (clustering ? 1 : 0);

  // Shared stage counters (in-process; see components.hpp).
  const std::size_t n_stages = 4 + static_cast<std::size_t>(k) + 1;
  std::vector<std::unique_ptr<StageStats>> stats(n_stages);
  for (auto& s : stats) s = std::make_unique<StageStats>();

  MasterReport master;

  dag::Graph graph;
  int node = 0;
  const int collector =
      config.day != nullptr
          ? graph.add_node("collector",
                           make_shared_collector(config.day, config.batch_size,
                                                 stats[0].get(),
                                                 config.replay_speedup))
      : config.tickdb_root.empty()
          ? graph.add_node("collector",
                           make_file_collector(std::move(quotes), config.batch_size,
                                               stats[0].get(), config.replay_speedup))
          : graph.add_node("collector",
                           make_db_collector(config.tickdb_root, config.date,
                                             config.batch_size, stats[0].get(),
                                             config.replay_speedup));
  const int cleaner = graph.add_node(
      "cleaner", make_cleaner(config.symbols, config.cleaner, stats[1].get()));
  const int snapshot = graph.add_node(
      "snapshot", make_snapshot_stage(config.symbols, session, base.delta_s,
                                      universe.base_price, stats[2].get()));
  const int corr =
      config.correlation_replicas > 1
          ? graph.add_group_node(
                "correlation",
                make_parallel_correlation_stage(
                    config.symbols, base.corr_window, need_maronna, config.maronna,
                    corr_fan_out, stats[3].get(), config.replica_deadline),
                config.correlation_replicas)
          : graph.add_node(
                "correlation",
                make_correlation_stage(config.symbols, base.corr_window, need_maronna,
                                       config.maronna, corr_fan_out, stats[3].get(),
                                       config.corr_store, config.corr_key, smax));

  // Optional clustering branch: corr port k -> cluster stage -> snapshot sink.
  std::vector<ClusterSnapshot> cluster_log;
  int cluster_node = -1, cluster_sink = -1;
  if (clustering) {
    cluster_node = graph.add_node(
        "cluster", make_cluster_stage(config.symbols, config.cluster_count,
                                      config.cluster_every));
    cluster_sink = graph.add_node("cluster-sink", [&cluster_log](dag::Context& ctx) {
      while (auto msg = ctx.recv()) {
        mpi::Unpacker u(msg->bytes);
        MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                  RecordType::cluster_snapshot);
        cluster_log.push_back(ClusterSnapshot::unpack(u));
      }
    });
  }
  std::vector<int> workers;
  const auto pairs = stats::all_pairs(config.symbols);
  for (int w = 0; w < k; ++w) {
    workers.push_back(graph.add_node(
        "strategy-" + std::to_string(w),
        make_strategy_stage(config.strategies[static_cast<std::size_t>(w)], pairs, w,
                            smax, stats[4 + static_cast<std::size_t>(w)].get())));
  }
  const int master_node = graph.add_node(
      "master", make_master(&master, config.risk, stats[n_stages - 1].get()));
  (void)node;

  graph.connect(collector, 0, cleaner, 0, config.channel_capacity);
  graph.connect(cleaner, 0, snapshot, 0, config.channel_capacity);
  graph.connect(snapshot, 0, corr, 0, config.channel_capacity);
  for (int w = 0; w < k; ++w) {
    graph.connect(corr, w, workers[static_cast<std::size_t>(w)], 0,
                  config.channel_capacity);
    graph.connect(workers[static_cast<std::size_t>(w)], 0, master_node, w,
                  config.channel_capacity);
  }
  if (clustering) {
    graph.connect(corr, k, cluster_node, 0, config.channel_capacity);
    graph.connect(cluster_node, 0, cluster_sink, 0, config.channel_capacity);
  }

  // Telemetry: the caller's registry when supplied, else a private one whose
  // aggregate outlives the run only through the snapshot below.
  obs::Registry local_metrics;
  obs::Registry* metrics = config.metrics != nullptr ? config.metrics : &local_metrics;
  // Shared-registry hygiene: result.metrics is a delta against run start, so
  // a second day on the same registry reports only its own traffic.
  const obs::Snapshot metrics_before = metrics->snapshot();

  obs::LivePlane live(config.live, *metrics, config.trace);
  live.begin_run(graph.rank_count(), graph.rank_node_names());

  dag::RunOptions options;
  options.fault = config.fault;
  options.pump_timeout = config.stage_deadline;
  options.metrics = metrics;
  options.trace = config.trace;
  options.trace_context = config.trace_context;
  options.heartbeat = live.board();
  options.heartbeat_interval = live.heartbeat_interval();
  options.rendezvous = config.rendezvous;

  Stopwatch watch;
  const dag::RunResult run_result = graph.run(options);

  // Hand failed nodes to the live plane as crash entries (mapped to their
  // leader rank); it merges in any rank the heartbeat monitor saw go silent
  // and dumps a flight bundle if the set is non-empty.
  std::vector<obs::CrashEntry> crashes;
  const std::vector<std::string> rank_names = graph.rank_node_names();
  for (const auto& status : run_result.nodes) {
    if (!status.failed) continue;
    obs::CrashEntry entry;
    for (std::size_t r = 0; r < rank_names.size(); ++r) {
      if (rank_names[r] == status.name) {
        entry.rank = static_cast<int>(r);
        break;
      }
    }
    entry.node = status.name;
    entry.reason = "exception";
    entry.error = status.error;
    crashes.push_back(std::move(entry));
  }

  PipelineResult result;
  result.master = std::move(master);
  result.live = live.end_run(std::move(crashes));
  result.metrics = metrics->snapshot().delta(metrics_before);
  result.clusters = std::move(cluster_log);
  result.wall_seconds = watch.elapsed_seconds();
  result.quotes_in = quotes_in;
  result.quotes_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(quotes_in) / result.wall_seconds
                                : 0.0;
  result.degraded = !run_result.ok();
  for (const auto& status : run_result.nodes)
    if (!status.ok()) result.faults.push_back(status);
  const char* names[] = {"collector", "cleaner", "snapshot", "correlation"};
  for (std::size_t i = 0; i < 4; ++i)
    result.stages.push_back({names[i], stats[i]->records_in.load(),
                             stats[i]->records_out.load(), stats[i]->items_in.load(),
                             stats[i]->items_out.load(), stats[i]->faults.load()});
  for (int w = 0; w < k; ++w) {
    const auto& s = *stats[4 + static_cast<std::size_t>(w)];
    result.stages.push_back({"strategy-" + std::to_string(w), s.records_in.load(),
                             s.records_out.load(), s.items_in.load(),
                             s.items_out.load(), s.faults.load()});
  }
  const auto& ms = *stats[n_stages - 1];
  result.stages.push_back({"master", ms.records_in.load(), ms.records_out.load(),
                           ms.items_in.load(), ms.items_out.load(), ms.faults.load()});
  return result;
}

SessionResult run_pipeline_session(const PipelineConfig& config,
                                   const md::Universe& universe,
                                   const md::GeneratorConfig& generator,
                                   int day_count) {
  MM_ASSERT_MSG(day_count >= 1, "session needs at least one day");
  Stopwatch watch;
  SessionResult session;
  session.days.reserve(static_cast<std::size_t>(day_count));
  for (int d = 0; d < day_count; ++d) {
    const md::SyntheticDay day(universe, generator, d);
    auto result = run_pipeline(config, universe, day.quotes());
    session.total_trades += result.master.trades;
    session.total_orders += result.master.orders;
    session.total_pnl += result.master.total_pnl;
    session.daily_pnl.push_back(result.master.total_pnl);
    session.days.push_back(std::move(result));
  }
  session.wall_seconds = watch.elapsed_seconds();
  return session;
}

}  // namespace mm::engine
