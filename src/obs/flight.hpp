// Flight recorder — postmortem bundles for failed runs.
//
// When a run ends with dead ranks (fault-plan kill, stage deadline, node
// exception, heartbeat silence) the engine hands everything the monitoring
// plane accumulated to FlightRecorder::dump(), which writes one
// self-contained bundle directory:
//
//   crash_report.json   what died, why, and every rank's final liveness
//   trace.json          the Chrome/Perfetto trace — all rank rings, the dead
//                       rank's last recorded spans included
//   snapshots.json      the last K registry snapshot frames (the short-term
//                       memory that shows the minutes BEFORE the failure)
//   metrics.prom        final registry state in Prometheus exposition text
//
// dump() runs strictly after the rank threads have joined: trace rings are
// single-writer and unsynchronized by design, so reading them mid-run would
// race. The monitor's detection timestamps are captured live; the bundle is
// written cold.
//
// Compiled identically with MM_OBS_ENABLED on or off — every input type is
// real in both modes (a disabled build just dumps empty traces/snapshots).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/snapshots.hpp"
#include "obs/trace.hpp"

namespace mm::obs {

// One dead rank's obituary.
struct CrashEntry {
  int rank = -1;
  std::string node;    // dagflow node name on that rank (may be empty)
  std::string reason;  // "heartbeat" | "deadline" | "exception" | "fault"
  std::string error;   // human-readable detail (exception text etc.)
  RankHealth health;   // monitor's view at detection time
};

class FlightRecorder {
 public:
  struct Config {
    std::string dir = "flight";        // parent for bundle directories
    std::size_t snapshot_frames = 8;   // last K frames to include
  };

  explicit FlightRecorder(Config config) : config_(std::move(config)) {}

  // Write one bundle under config.dir; returns the bundle directory path.
  // `rank_nodes` maps world rank to node name for the report; `frames` are
  // oldest -> newest (only the newest snapshot_frames are written).
  Expected<std::string> dump(const std::vector<CrashEntry>& crashes,
                             const std::vector<RankHealth>& health,
                             const std::vector<std::string>& rank_nodes,
                             const TraceSink* trace,
                             const std::vector<SnapshotFrame>& frames,
                             const Snapshot& metrics) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

}  // namespace mm::obs
