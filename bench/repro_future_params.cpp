// §VI future-work reproduction: "identification of optimal parameter sets
// for a given correlation measure". Runs the experiment with per-level detail
// and ranks the 14 factor levels per treatment under several objectives.
#include <cstdio>

#include "core/optimizer.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_future_params",
              "Rank the parameter levels per correlation measure (future work)");
  auto& top = cli.add_int("top", 5, "levels to show per treatment");
  auto cfg = mm::bench::build_config(cli, argc, argv);
  cfg.keep_level_detail = true;

  const auto result = mm::bench::run_with_banner(
      cfg, "Future work — optimal parameter-set identification");

  const mm::core::ParamGrid grid;
  for (const auto objective :
       {mm::core::Objective::sharpe, mm::core::Objective::mean_return,
        mm::core::Objective::drawdown}) {
    const auto ranking = mm::core::rank_levels(result, grid, objective);
    std::printf("%s\n", mm::core::render_optimizer_report(
                            ranking, static_cast<std::size_t>(top))
                            .c_str());
  }
  return 0;
}
