#include "marketdata/generator.hpp"

#include <algorithm>
#include <cmath>

namespace mm::md {

double u_shape(double x) {
  // Quadratic smile normalized to integrate to ~1 on [0,1]:
  // u(x) = a + b(2x-1)^2 with a + b/3 = 1.
  constexpr double b = 1.8;
  constexpr double a = 1.0 - b / 3.0;
  const double t = 2.0 * x - 1.0;
  return a + b * t * t;
}

SyntheticDay::SyntheticDay(const Universe& universe, const GeneratorConfig& config,
                           int day_index)
    : session_(config.session) {
  build(universe, config, day_index, universe.base_price);
}

SyntheticDay::SyntheticDay(const Universe& universe, const GeneratorConfig& config,
                           int day_index, const std::vector<double>& open_prices)
    : session_(config.session) {
  MM_ASSERT_MSG(open_prices.size() == universe.table.size(),
                "one open price per symbol required");
  build(universe, config, day_index, open_prices);
}

void SyntheticDay::build(const Universe& universe, const GeneratorConfig& config,
                         int day_index, const std::vector<double>& open_prices) {
  seconds_ = session_.duration_seconds();
  // Independent stream per (seed, day): expand via splitmix64.
  std::uint64_t sm = config.seed;
  (void)splitmix64(sm);
  sm ^= 0x51ed2700b1a3c492ULL * static_cast<std::uint64_t>(day_index + 1);
  Rng rng(splitmix64(sm));

  open_prices_ = open_prices;
  build_paths(universe, config, rng);
  emit_quotes(universe, config, rng);
  emit_trades(universe, config, rng);
}

std::vector<double> SyntheticDay::closing_prices() const {
  std::vector<double> out;
  out.reserve(paths_.size());
  for (const auto& path : paths_) out.push_back(path.back());
  return out;
}

void SyntheticDay::emit_trades(const Universe& universe, const GeneratorConfig& config,
                               Rng& rng) {
  const auto n = universe.table.size();
  const auto steps = static_cast<std::size_t>(seconds_);
  trades_.clear();
  if (config.trade_rate <= 0.0) return;
  trades_.reserve(static_cast<std::size_t>(static_cast<double>(n * steps) *
                                           config.trade_rate * 1.1) + 64);

  for (SymbolId i = 0; i < n; ++i) {
    const double u_max = std::max(u_shape(0.0), 1.0);
    const double peak_rate = config.trade_rate * u_max;
    double t = rng.exponential(peak_rate);
    while (t < static_cast<double>(seconds_)) {
      const double x = t / static_cast<double>(seconds_);
      if (rng.uniform() < u_shape(x) / u_max) {
        const auto sec = std::min(static_cast<std::size_t>(t), steps - 1);
        const double mid = paths_[i][sec];
        const double half_spread = std::max(0.005, mid * config.half_spread_frac);
        Trade trade;
        trade.ts_ms = session_.open_ms() + static_cast<TimeMs>(t * 1000.0);
        trade.symbol = i;
        // Executions lift the ask or hit the bid with equal probability.
        trade.price = mid + (rng.bernoulli(0.5) ? half_spread : -half_spread);
        trade.price = std::max(0.01, std::round(trade.price * 100.0) / 100.0);
        // Round lots, geometric-ish size distribution.
        trade.size = 100 * (1 + static_cast<std::int32_t>(rng.exponential(0.7)));
        trades_.push_back(trade);
      }
      t += rng.exponential(peak_rate);
    }
  }
  std::stable_sort(trades_.begin(), trades_.end(),
                   [](const Trade& a, const Trade& b) { return a.ts_ms < b.ts_ms; });
}

void SyntheticDay::build_paths(const Universe& universe, const GeneratorConfig& config,
                               Rng& rng) {
  const auto n = universe.table.size();
  const auto n_sectors = universe.sector_names.size();
  const auto steps = static_cast<std::size_t>(seconds_);

  paths_.assign(n, std::vector<double>(steps));

  // Per-symbol factor loadings: stable but heterogeneous, derived from the
  // rng so different universes differ.
  std::vector<double> beta(n), gamma(n), sigma(n);
  for (std::size_t i = 0; i < n; ++i) {
    beta[i] = 0.8 + 0.4 * rng.uniform();   // market loading in [0.8, 1.2]
    gamma[i] = 0.8 + 0.4 * rng.uniform();  // sector loading
    sigma[i] = 0.75 + 0.5 * rng.uniform(); // idio vol multiplier
  }

  // Divergence episodes: piecewise drift per symbol per second. Episode
  // intensity is heterogeneous across symbols but constant across days
  // (multiplier derived from seed+symbol only), so the same pairs stay
  // divergence-rich all month.
  std::vector<double> episode_mult(n), drift_mult(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sm = config.seed ^ (0xa24baed4963ee407ULL * (i + 1));
    Rng symbol_rng(splitmix64(sm));
    episode_mult[i] = std::clamp(
        config.episode_mult_median * std::exp(config.episode_mult_sigma *
                                              symbol_rng.normal()),
        config.episode_mult_min, config.episode_mult_max);
    drift_mult[i] =
        std::clamp(std::exp(config.episode_drift_sigma * symbol_rng.normal()),
                   config.episode_drift_mult_min, config.episode_drift_mult_max);
  }

  std::vector<std::vector<double>> drift(n, std::vector<double>(steps, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = config.episodes_per_day * episode_mult[i];
    // Poisson count via sequential Bernoulli thinning over minutes.
    int episodes = 0;
    {
      // Knuth's method, bounded to avoid pathological configs.
      const double l = std::exp(-expected);
      double p = 1.0;
      while (episodes < 40) {
        p *= rng.uniform();
        if (p <= l) break;
        ++episodes;
      }
    }
    for (int e = 0; e < episodes; ++e) {
      const double minutes = rng.uniform(config.episode_min_minutes,
                                         config.episode_max_minutes);
      const auto len = static_cast<std::size_t>(minutes * 60.0);
      if (len == 0 || 2 * len >= steps) continue;
      const auto start = static_cast<std::size_t>(rng.uniform_int(steps - 2 * len));
      const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
      const double per_second =
          sign * config.episode_drift * drift_mult[i] / static_cast<double>(len);
      const double reversion =
          -per_second * config.episode_reversion;  // opposite drift afterwards
      for (std::size_t t = 0; t < len; ++t) drift[i][start + t] += per_second;
      for (std::size_t t = 0; t < len; ++t) drift[i][start + len + t] += reversion;
    }
  }

  std::vector<double> log_price(n);
  for (std::size_t i = 0; i < n; ++i) {
    MM_ASSERT_MSG(open_prices_[i] > 0.0, "open price must be positive");
    log_price[i] = std::log(open_prices_[i]);
  }

  std::vector<double> sector_shock(n_sectors);
  for (std::size_t t = 0; t < steps; ++t) {
    const double u = u_shape(static_cast<double>(t) / static_cast<double>(steps));
    const double scale = std::sqrt(u);
    const double market = config.market_vol * scale * rng.normal();
    for (std::size_t g = 0; g < n_sectors; ++g)
      sector_shock[g] = config.sector_vol * scale * rng.normal();
    for (std::size_t i = 0; i < n; ++i) {
      const double idio = config.idio_vol * sigma[i] * scale *
                          rng.student_t(config.idio_tail_df) /
                          std::sqrt(config.idio_tail_df / (config.idio_tail_df - 2.0));
      log_price[i] += beta[i] * market +
                      gamma[i] * sector_shock[static_cast<std::size_t>(
                                     universe.sector[i])] +
                      idio + drift[i][t];
      paths_[i][t] = std::exp(log_price[i]);
    }
  }
}

void SyntheticDay::emit_quotes(const Universe& universe, const GeneratorConfig& config,
                               Rng& rng) {
  const auto n = universe.table.size();
  const auto steps = static_cast<std::size_t>(seconds_);
  quotes_.clear();
  // Expected total quotes: n * seconds * rate — reserve to avoid regrowth.
  quotes_.reserve(static_cast<std::size_t>(static_cast<double>(n * steps) *
                                           config.quote_rate * 1.1) + 64);

  for (SymbolId i = 0; i < n; ++i) {
    // Poisson arrivals via exponential gaps, with intensity modulated by the
    // U-shape (thinning): draw at peak intensity, accept with u(t)/u_max.
    const double u_max = std::max(u_shape(0.0), 1.0);
    const double peak_rate = config.quote_rate * u_max;
    double t = rng.exponential(peak_rate);
    while (t < static_cast<double>(seconds_)) {
      const double x = t / static_cast<double>(seconds_);
      if (rng.uniform() < u_shape(x) / u_max) {
        const auto sec = std::min(static_cast<std::size_t>(t), steps - 1);
        const double mid =
            paths_[i][sec] * (1.0 + config.quote_noise_frac * rng.normal());
        const double half_spread =
            std::max(0.01 / 2.0, mid * config.half_spread_frac);  // >= 1 cent wide

        Quote q;
        q.ts_ms = session_.open_ms() + static_cast<TimeMs>(t * 1000.0);
        q.symbol = i;
        q.bid = mid - half_spread;
        q.ask = mid + half_spread;
        q.bid_size = 1 + static_cast<std::int32_t>(rng.uniform_int(40));
        q.ask_size = 1 + static_cast<std::int32_t>(rng.uniform_int(40));

        // Dirty data injection.
        if (rng.bernoulli(config.bad_tick_rate)) {
          const double jump =
              rng.uniform(config.bad_tick_min_jump, config.bad_tick_max_jump);
          const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
          if (rng.bernoulli(0.5)) {
            // Fat-finger: both sides displaced.
            q.bid *= 1.0 + sign * jump;
            q.ask *= 1.0 + sign * jump;
          } else {
            // Far-out limit / test quote on one side.
            if (sign > 0)
              q.ask *= 1.0 + jump * 4.0;
            else
              q.bid *= 1.0 - std::min(0.95, jump * 4.0);
          }
          ++corrupted_;
        } else if (rng.bernoulli(config.crossed_rate)) {
          std::swap(q.bid, q.ask);  // crossed market
          ++corrupted_;
        } else if (rng.bernoulli(config.minor_tick_rate)) {
          // Small displacement that typically survives the band filter; the
          // robust correlation is what defends against these.
          const double jump =
              rng.uniform(config.minor_tick_min_jump, config.minor_tick_max_jump);
          const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
          q.bid *= 1.0 + sign * jump;
          q.ask *= 1.0 + sign * jump;
          ++corrupted_;
        }

        // Round to cents like real quote feeds.
        q.bid = std::max(0.01, std::round(q.bid * 100.0) / 100.0);
        q.ask = std::max(0.01, std::round(q.ask * 100.0) / 100.0);
        quotes_.push_back(q);
      }
      t += rng.exponential(peak_rate);
    }
  }

  std::stable_sort(quotes_.begin(), quotes_.end(),
                   [](const Quote& a, const Quote& b) { return a.ts_ms < b.ts_ms; });
}

const std::vector<double>& SyntheticDay::true_path(SymbolId symbol) const {
  MM_ASSERT(symbol < paths_.size());
  return paths_[symbol];
}

ReturnStream::ReturnStream(const Universe& universe, const GeneratorConfig& config,
                           double interval_seconds)
    : config_(config),
      sector_(universe.sector),
      symbols_(universe.table.size()),
      sectors_(universe.sector_names.size()),
      interval_seconds_(interval_seconds) {
  MM_ASSERT_MSG(interval_seconds > 0.0, "interval must be positive");
  const auto duration = static_cast<double>(config.session.duration_seconds());
  steps_per_day_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(duration / interval_seconds));

  beta_.resize(symbols_);
  gamma_.resize(symbols_);
  sigma_.resize(symbols_);
  episode_mult_.resize(symbols_);
  drift_mult_.resize(symbols_);
  for (std::size_t i = 0; i < symbols_; ++i) {
    // Loadings come from a per-symbol stream (distinct constant from every
    // other stream in this file), so they are stable across days and across
    // universe sizes — growing n leaves the first symbols' dynamics intact.
    std::uint64_t sm =
        config.seed ^ 0x6a09e667f3bcc909ULL ^ (0xbf58476d1ce4e5b9ULL * (i + 1));
    Rng loading_rng(splitmix64(sm));
    beta_[i] = 0.8 + 0.4 * loading_rng.uniform();
    gamma_[i] = 0.8 + 0.4 * loading_rng.uniform();
    sigma_[i] = 0.75 + 0.5 * loading_rng.uniform();
    // Episode multipliers use SyntheticDay's exact derivation so the same
    // symbols are divergence-rich under both generators.
    std::uint64_t sm2 = config.seed ^ (0xa24baed4963ee407ULL * (i + 1));
    Rng symbol_rng(splitmix64(sm2));
    episode_mult_[i] = std::clamp(
        config.episode_mult_median *
            std::exp(config.episode_mult_sigma * symbol_rng.normal()),
        config.episode_mult_min, config.episode_mult_max);
    drift_mult_[i] =
        std::clamp(std::exp(config.episode_drift_sigma * symbol_rng.normal()),
                   config.episode_drift_mult_min, config.episode_drift_mult_max);
  }

  div_left_.assign(symbols_, 0);
  rev_left_.assign(symbols_, 0);
  step_drift_.assign(symbols_, 0.0);
  pending_.assign(symbols_, 0.0);
  sector_shock_.resize(sectors_);
  begin_day();
}

void ReturnStream::begin_day() {
  // SyntheticDay's per-day seeding idiom, displaced by one extra constant so
  // the two generators never share a stream for the same (seed, day).
  std::uint64_t sm = config_.seed;
  (void)splitmix64(sm);
  sm ^= 0x51ed2700b1a3c492ULL * static_cast<std::uint64_t>(day_ + 1);
  sm ^= 0x94d049bb133111ebULL;
  rng_.reseed(splitmix64(sm));
}

void ReturnStream::next(std::vector<double>& out) {
  if (step_in_day_ == steps_per_day_) {
    step_in_day_ = 0;
    ++day_;
    begin_day();
  }
  out.resize(symbols_);

  // Interval variance scales with interval length and the intraday smile at
  // the interval's midpoint.
  const double x = (static_cast<double>(step_in_day_) + 0.5) /
                   static_cast<double>(steps_per_day_);
  const double scale = std::sqrt(u_shape(x) * interval_seconds_);
  const double t_norm =
      std::sqrt(config_.idio_tail_df / (config_.idio_tail_df - 2.0));
  const double start_p =
      std::min(1.0, config_.episodes_per_day /
                        static_cast<double>(steps_per_day_));

  const double market = config_.market_vol * scale * rng_.normal();
  for (std::size_t g = 0; g < sectors_; ++g)
    sector_shock_[g] = config_.sector_vol * scale * rng_.normal();

  for (std::size_t i = 0; i < symbols_; ++i) {
    const double idio = config_.idio_vol * sigma_[i] * scale *
                        rng_.student_t(config_.idio_tail_df) / t_norm;

    // Divergence episodes: a transient per-step drift followed by a
    // reversion drift of the opposite sign over the same length (the same
    // diverge-then-recover shape SyntheticDay injects into its paths).
    if (div_left_[i] == 0 && rev_left_[i] == 0 &&
        rng_.bernoulli(std::min(1.0, start_p * episode_mult_[i]))) {
      const double minutes = rng_.uniform(config_.episode_min_minutes,
                                          config_.episode_max_minutes);
      const auto len = std::max<std::int32_t>(
          1, static_cast<std::int32_t>(minutes * 60.0 / interval_seconds_));
      const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
      div_left_[i] = len;
      rev_left_[i] = len;
      step_drift_[i] = sign * config_.episode_drift * drift_mult_[i] /
                       static_cast<double>(len);
    }
    double drift = 0.0;
    if (div_left_[i] > 0) {
      drift = step_drift_[i];
      if (--div_left_[i] == 0) step_drift_[i] *= -config_.episode_reversion;
    } else if (rev_left_[i] > 0) {
      drift = step_drift_[i];
      --rev_left_[i];
    }

    double r = beta_[i] * market +
               gamma_[i] * sector_shock_[static_cast<std::size_t>(sector_[i])] +
               idio + drift + pending_[i];
    pending_[i] = 0.0;

    // Residual dirty data at the return level: a bad price print is a return
    // spike undone on the following interval.
    if (rng_.bernoulli(config_.bad_tick_rate)) {
      const double jump =
          rng_.uniform(config_.bad_tick_min_jump, config_.bad_tick_max_jump);
      const double spike = (rng_.bernoulli(0.5) ? 1.0 : -1.0) * jump;
      r += spike;
      pending_[i] = -spike;
    } else if (rng_.bernoulli(config_.minor_tick_rate)) {
      const double jump = rng_.uniform(config_.minor_tick_min_jump,
                                       config_.minor_tick_max_jump);
      const double spike = (rng_.bernoulli(0.5) ? 1.0 : -1.0) * jump;
      r += spike;
      pending_[i] = -spike;
    }
    out[i] = r;
  }
  ++step_in_day_;
}

std::vector<double> ReturnStream::next() {
  std::vector<double> out;
  next(out);
  return out;
}

}  // namespace mm::md
