// Microbenchmarks for the correlation engines — the paper's computational
// core. Covers: batch vs incremental Pearson (ablation of design decision 1),
// Maronna cost vs window length M, full-matrix step cost vs universe size,
// and the parallel engine across worker counts.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/symbols.hpp"
#include "mpmini/environment.hpp"
#include "stats/corr_engine.hpp"
#include "stats/ewma.hpp"
#include "stats/psd.hpp"
#include "stats/rank_corr.hpp"
#include "stats/simd.hpp"

namespace {

using namespace mm::stats;

std::vector<std::vector<double>> factor_stream(std::size_t symbols, std::size_t steps,
                                               std::uint64_t seed) {
  mm::Rng rng(seed);
  std::vector<std::vector<double>> out(steps, std::vector<double>(symbols));
  for (auto& step : out) {
    const double f = rng.normal();
    for (auto& r : step) r = 1e-4 * (0.6 * f + rng.normal());
  }
  return out;
}

void BM_PearsonBatch(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  mm::Rng rng(1);
  std::vector<double> x(m), y(m);
  for (std::size_t i = 0; i < m; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  for (auto _ : state) benchmark::DoNotOptimize(pearson(x.data(), y.data(), m));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PearsonBatch)->Arg(50)->Arg(100)->Arg(200);

void BM_PearsonSlidingPush(benchmark::State& state) {
  // The O(1) incremental update — compare against BM_PearsonBatch at the
  // same M to see the ablation of design decision 1.
  const auto m = static_cast<std::size_t>(state.range(0));
  SlidingPearson sp(m);
  mm::Rng rng(2);
  for (std::size_t i = 0; i < m; ++i) sp.push(rng.normal(), rng.normal());
  double x = 0.1, y = -0.1;
  for (auto _ : state) {
    sp.push(x, y);
    benchmark::DoNotOptimize(sp.correlation());
    std::swap(x, y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PearsonSlidingPush)->Arg(50)->Arg(100)->Arg(200);

void BM_Maronna(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  mm::Rng rng(3);
  std::vector<double> x(m), y(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double f = rng.normal();
    x[i] = 0.7 * f + rng.normal();
    y[i] = 0.7 * f + rng.normal();
  }
  for (auto _ : state) benchmark::DoNotOptimize(maronna(x.data(), y.data(), m));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Maronna)->Arg(50)->Arg(100)->Arg(200);

void BM_Spearman(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  mm::Rng rng(8);
  std::vector<double> x(m), y(m);
  for (std::size_t i = 0; i < m; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  for (auto _ : state) benchmark::DoNotOptimize(spearman(x.data(), y.data(), m));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Spearman)->Arg(50)->Arg(100)->Arg(200);

void BM_KendallTau(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  mm::Rng rng(9);
  std::vector<double> x(m), y(m);
  for (std::size_t i = 0; i < m; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  for (auto _ : state) benchmark::DoNotOptimize(kendall_tau(x.data(), y.data(), m));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KendallTau)->Arg(50)->Arg(100)->Arg(200);

void BM_EwmaCorrelationPush(benchmark::State& state) {
  EwmaCorrelation ewma(0.99);
  mm::Rng rng(10);
  for (int i = 0; i < 200; ++i) ewma.push(rng.normal(), rng.normal());
  double x = 0.3, y = -0.2;
  for (auto _ : state) {
    ewma.push(x, y);
    benchmark::DoNotOptimize(ewma.correlation());
    std::swap(x, y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwmaCorrelationPush);

void BM_MatrixStepPearson(benchmark::State& state) {
  // Full market-wide matrix per interval, incremental Pearson: the engine's
  // steady-state cost as the universe grows.
  const auto n = static_cast<std::size_t>(state.range(0));
  CorrEngineConfig cfg;
  cfg.type = Ctype::pearson;
  cfg.window = 100;
  CorrelationCalculator calc(cfg, n);
  const auto stream = factor_stream(n, 160, 4);
  for (const auto& r : stream) calc.push(r);
  std::size_t next = 0;
  for (auto _ : state) {
    calc.push(stream[next]);
    next = (next + 1) % stream.size();
    benchmark::DoNotOptimize(calc.matrix());
  }
  state.SetItemsProcessed(state.iterations() * (n * (n - 1) / 2));
}
BENCHMARK(BM_MatrixStepPearson)->Arg(10)->Arg(20)->Arg(61);

void BM_MatrixStepMaronna(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 100;
  CorrelationCalculator calc(cfg, n);
  const auto stream = factor_stream(n, 160, 5);
  for (const auto& r : stream) calc.push(r);
  std::size_t next = 0;
  for (auto _ : state) {
    calc.push(stream[next]);
    next = (next + 1) % stream.size();
    benchmark::DoNotOptimize(calc.matrix());
  }
  state.SetItemsProcessed(state.iterations() * (n * (n - 1) / 2));
}
BENCHMARK(BM_MatrixStepMaronna)->Arg(10)->Arg(20);

// Cold vs warm full-matrix Maronna step at the paper's full scale
// (n up to 61 symbols, M = 120): the warm-start headline numbers for
// BENCH_corr.json. Both variants use the same MaronnaConfig so the only
// difference is the fixed-point seeding; `accuracy` reports the maximum
// absolute warm-vs-cold matrix entry difference seen while timing.
void matrix_step_maronna_seeded(benchmark::State& state, bool warm_start) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 120;
  cfg.warm_start = warm_start;
  CorrEngineConfig other_cfg = cfg;
  other_cfg.warm_start = !warm_start;
  CorrelationCalculator calc(cfg, n);
  CorrelationCalculator other(other_cfg, n);
  const auto stream = factor_stream(n, 200, 5);
  for (const auto& r : stream) calc.push(r);
  for (const auto& r : stream) other.push(r);
  double max_diff = 0.0;
  std::size_t next = 0;
  for (auto _ : state) {
    calc.push(stream[next]);
    const auto m = calc.matrix();
    benchmark::DoNotOptimize(m);
    state.PauseTiming();
    other.push(stream[next]);
    max_diff = std::max(max_diff, SymMatrix::max_abs_diff(m, other.matrix()));
    next = (next + 1) % stream.size();
    state.ResumeTiming();
  }
  state.counters["accuracy"] = max_diff;
  state.SetItemsProcessed(state.iterations() * (n * (n - 1) / 2));
}

void BM_MatrixStepMaronnaCold(benchmark::State& state) {
  matrix_step_maronna_seeded(state, /*warm_start=*/false);
}
BENCHMARK(BM_MatrixStepMaronnaCold)->Arg(20)->Arg(61)->Unit(benchmark::kMillisecond);

void BM_MatrixStepMaronnaWarm(benchmark::State& state) {
  matrix_step_maronna_seeded(state, /*warm_start=*/true);
}
BENCHMARK(BM_MatrixStepMaronnaWarm)->Arg(20)->Arg(61)->Unit(benchmark::kMillisecond);

// --- universe-scale scaling curve -------------------------------------------
//
// Full-matrix step cost from the paper's n = 61 to the exchange-wide
// n = 2000, under the scalar and AVX2 kernel levels (the BENCH_corr.json
// scaling chart). Returns come from the deterministic interval-resolution
// ReturnStream over make_universe(n) — the same data any scaled experiment
// consumes — and the loop is the engines' steady state: one push plus one
// matrix_into per iteration, allocation-free buffers reused throughout.
void matrix_step_scaling(benchmark::State& state, Ctype type,
                         mm::stats::simd::Level level) {
  namespace simd = mm::stats::simd;
  const simd::ScopedLevel scoped(level);
  if (!scoped.engaged()) {
    state.SkipWithError("kernel level unavailable on this build/host");
    return;
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto universe = mm::md::make_universe(n);
  mm::md::ReturnStream stream(universe, mm::md::GeneratorConfig{});

  CorrEngineConfig cfg;
  cfg.type = type;
  cfg.window = 100;
  cfg.warm_start = type != Ctype::pearson;
  CorrelationCalculator calc(cfg, n);
  std::vector<double> returns;
  for (std::size_t t = 0; t <= cfg.window; ++t) {
    stream.next(returns);
    calc.push(returns);
  }
  SymMatrix out;
  calc.matrix_into(out);  // size buffers + cold-start warm state off the clock

  for (auto _ : state) {
    stream.next(returns);
    calc.push(returns);
    calc.matrix_into(out);
    benchmark::DoNotOptimize(out.packed().data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * (n - 1) / 2));
}

void BM_MatrixScalingPearsonScalar(benchmark::State& state) {
  matrix_step_scaling(state, Ctype::pearson, mm::stats::simd::Level::scalar);
}
BENCHMARK(BM_MatrixScalingPearsonScalar)
    ->Arg(61)->Arg(250)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_MatrixScalingPearsonAvx2(benchmark::State& state) {
  matrix_step_scaling(state, Ctype::pearson, mm::stats::simd::Level::avx2);
}
BENCHMARK(BM_MatrixScalingPearsonAvx2)
    ->Arg(61)->Arg(250)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

// Warm Maronna is O(n²·M) per step; the big universes pin the iteration
// count so one bench run stays in seconds, which is ample for a kernel whose
// per-step cost dwarfs timer noise.
void BM_MatrixScalingMaronnaWarmScalar(benchmark::State& state) {
  matrix_step_scaling(state, Ctype::maronna, mm::stats::simd::Level::scalar);
}
BENCHMARK(BM_MatrixScalingMaronnaWarmScalar)
    ->Arg(61)->Arg(250)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatrixScalingMaronnaWarmScalar)
    ->Arg(1000)->Arg(2000)->Iterations(2)->Unit(benchmark::kMillisecond);

void BM_MatrixScalingMaronnaWarmAvx2(benchmark::State& state) {
  matrix_step_scaling(state, Ctype::maronna, mm::stats::simd::Level::avx2);
}
BENCHMARK(BM_MatrixScalingMaronnaWarmAvx2)
    ->Arg(61)->Arg(250)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatrixScalingMaronnaWarmAvx2)
    ->Arg(1000)->Arg(2000)->Iterations(2)->Unit(benchmark::kMillisecond);

void BM_ParallelEngineRanks(benchmark::State& state) {
  // The paper's parallel correlation engine: pair shards across ranks. On a
  // single-core host this measures coordination overhead; on real hardware
  // the Maronna shard work scales with ranks.
  const int ranks = static_cast<int>(state.range(0));
  constexpr std::size_t n = 20;
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 50;
  const auto stream = factor_stream(n, 70, 6);
  for (auto _ : state) {
    mm::mpi::Environment::run(ranks, [&](mm::mpi::Comm& comm) {
      ParallelCorrelationEngine engine(comm, cfg, n);
      for (const auto& r : stream) benchmark::DoNotOptimize(engine.step(r));
    });
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ParallelEngineRanks)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PsdRepair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 30;
  CorrelationCalculator calc(cfg, n);
  for (const auto& r : factor_stream(n, 40, 7)) calc.push(r);
  const auto m = calc.matrix();
  for (auto _ : state) benchmark::DoNotOptimize(nearest_psd_correlation(m));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PsdRepair)->Arg(10)->Arg(20)->Arg(61)->Unit(benchmark::kMillisecond);

}  // namespace
