// Pearson correlation: batch and incremental sliding-window forms.
//
// The incremental form is the workhorse of the integrated engine: with every
// symbol producing one log-return per ∆s interval, all M-windows advance in
// lockstep, so per-symbol sums (Σx, Σx²) and per-pair cross sums (Σxy) can be
// updated in O(1) per pair per step instead of O(M) — the amortization that
// makes market-wide correlation matrices feasible online (§II).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace mm::stats {

// Batch Pearson correlation of two equal-length samples. Returns 0 when
// either sample is (numerically) constant — an uncorrelatable input, which
// for the trading strategy correctly reads as "no signal".
double pearson(const double* x, const double* y, std::size_t n);
double pearson(const std::vector<double>& x, const std::vector<double>& y);

// Incremental windowed accumulator for ONE pair. Feed one (x, y) observation
// per step; once `window` observations have accumulated, correlation() is
// available and each further push evicts the oldest point.
class SlidingPearson {
 public:
  explicit SlidingPearson(std::size_t window);

  void push(double x, double y);

  bool ready() const { return count_ == window_; }
  std::size_t window() const { return window_; }

  // Pearson correlation over the current window. Requires ready().
  double correlation() const;

 private:
  void rebuild();

  std::size_t window_;
  std::vector<double> xs_, ys_;  // ring buffers (offset-centered values)
  double offset_x_ = 0.0, offset_y_ = 0.0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t pushes_ = 0;
  double sum_x_ = 0.0, sum_y_ = 0.0, sum_xx_ = 0.0, sum_yy_ = 0.0, sum_xy_ = 0.0;
};

}  // namespace mm::stats
