// Bounded lock-free single-producer / single-consumer ring.
//
// The intra-process transport's hot path: each (sender rank -> receiver rank)
// pair owns one SpscRing<Message> (a "lane", see mailbox.hpp), so a send is a
// move into a pre-sized slot plus one release store — no lock, no allocation,
// no contention with other senders. Slots are reused in place, which makes the
// ring double as the envelope arena: a Message's payload vector moved into a
// slot is moved out again by the consumer, so steady-state traffic recycles
// buffers instead of allocating.
//
// Contract:
//   * exactly one producer thread calls try_push / size_from_producer;
//   * consumers call try_pop / empty — multiple threads may consume, but only
//     if their pops are serialized externally (the mailbox serializes drains
//     under its mutex; the mutex hand-off provides the ordering the SPSC
//     protocol needs between alternating consumer threads);
//   * capacity is rounded up to a power of two; a full ring rejects the push
//     (the transport falls back to the locked mailbox path, see comm.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace mm::mpi {

inline std::size_t round_up_pow2(std::size_t n) {
  constexpr std::size_t top = std::size_t{1} << (sizeof(std::size_t) * 8 - 1);
  std::size_t p = 1;
  // Saturate at the top bit: shifting past it would wrap p to zero and loop
  // forever (callers clamp to sane capacities anyway, see ring_capacity()).
  while (p < n && p < top) p <<= 1;
  return p;
}

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(std::make_unique<T[]>(mask_ + 1)) {}

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Producer side. Returns false when the ring is full.
  bool try_push(T&& v) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer-side occupancy after the last push (approximate: the consumer
  // may have drained since head_cache_ was refreshed). Used for the ring
  // depth watermark, where an over-estimate is the conservative direction.
  std::size_t size_from_producer() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_cache_);
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Cheap emptiness probe for spin loops: safe from any thread, may race
  // (a false "empty" is caught by the next poll or by the park protocol).
  bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

 private:
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next slot to fill
  alignas(64) std::uint64_t head_cache_ = 0;        // producer's view of head
  alignas(64) std::uint64_t tail_cache_ = 0;        // consumer's view of tail
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;
};

}  // namespace mm::mpi
