// Small string utilities used by the CSV reader, CLI parser and report
// formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace mm {

// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

// Strict numeric parses: the whole (trimmed) string must be consumed.
Expected<double> parse_double(std::string_view text);
Expected<std::int64_t> parse_int(std::string_view text);

// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Fixed-width column padding for the plain-text report tables.
std::string pad_left(std::string s, std::size_t width);
std::string pad_right(std::string s, std::size_t width);

bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace mm
