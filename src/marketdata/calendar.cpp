#include "marketdata/calendar.hpp"

#include <array>

#include "common/strings.hpp"

namespace mm::md {
namespace {

bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> lengths = {31, 28, 31, 30, 31, 30,
                                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return lengths[static_cast<std::size_t>(month - 1)];
}

}  // namespace

bool Date::valid() const {
  return year >= 1900 && year <= 2200 && month >= 1 && month <= 12 && day >= 1 &&
         day <= days_in_month(year, month);
}

int Date::weekday() const {
  // Sakamoto's algorithm, shifted so 0 = Monday.
  static constexpr std::array<int, 12> t = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  int y = year;
  if (month < 3) y -= 1;
  const int dow_sunday0 =
      (y + y / 4 - y / 100 + y / 400 + t[static_cast<std::size_t>(month - 1)] + day) % 7;
  return (dow_sunday0 + 6) % 7;
}

Date Date::next_day() const {
  Date d = *this;
  d.day += 1;
  if (d.day > days_in_month(d.year, d.month)) {
    d.day = 1;
    d.month += 1;
    if (d.month > 12) {
      d.month = 1;
      d.year += 1;
    }
  }
  return d;
}

Date Date::next_business_day() const {
  Date d = next_day();
  while (d.is_weekend() || is_holiday(d)) d = d.next_day();
  return d;
}

std::string Date::iso() const { return format("%04d-%02d-%02d", year, month, day); }

bool is_holiday(const Date& d) {
  // 2008 NYSE holidays (the paper's data is March 2008; Good Friday fell on
  // March 21). Extend as experiments need.
  static constexpr std::array<Date, 9> holidays = {{
      {2008, 1, 1},   // New Year's Day
      {2008, 1, 21},  // MLK Day
      {2008, 2, 18},  // Washington's Birthday
      {2008, 3, 21},  // Good Friday
      {2008, 5, 26},  // Memorial Day
      {2008, 7, 4},   // Independence Day
      {2008, 9, 1},   // Labor Day
      {2008, 11, 27}, // Thanksgiving
      {2008, 12, 25}, // Christmas
  }};
  for (const auto& h : holidays)
    if (h == d) return true;
  return false;
}

Session::Session(TimeMs open_ms, TimeMs close_ms) : open_ms_(open_ms), close_ms_(close_ms) {
  MM_ASSERT_MSG(close_ms_ > open_ms_, "session close must follow open");
}

std::int64_t Session::interval_count(std::int64_t delta_s_seconds) const {
  MM_ASSERT_MSG(delta_s_seconds > 0, "delta_s must be positive");
  return duration_seconds() / delta_s_seconds;
}

std::int64_t Session::interval_of(TimeMs ts, std::int64_t delta_s_seconds) const {
  if (!contains(ts)) return -1;
  const std::int64_t s = (ts - open_ms_) / (delta_s_seconds * ms_per_second);
  return s < interval_count(delta_s_seconds) ? s : -1;
}

TimeMs Session::interval_start(std::int64_t s, std::int64_t delta_s_seconds) const {
  MM_ASSERT(s >= 0 && s < interval_count(delta_s_seconds));
  return open_ms_ + s * delta_s_seconds * ms_per_second;
}

TimeMs Session::interval_end(std::int64_t s, std::int64_t delta_s_seconds) const {
  return interval_start(s, delta_s_seconds) + delta_s_seconds * ms_per_second;
}

std::vector<Date> business_days(Date first, int count) {
  MM_ASSERT(first.valid());
  MM_ASSERT(count >= 0);
  std::vector<Date> out;
  out.reserve(static_cast<std::size_t>(count));
  Date d = first;
  while (d.is_weekend() || is_holiday(d)) d = d.next_day();
  while (static_cast<int>(out.size()) < count) {
    out.push_back(d);
    d = d.next_business_day();
  }
  return out;
}

}  // namespace mm::md
