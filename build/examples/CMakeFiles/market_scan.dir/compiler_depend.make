# Empty compiler generated dependencies file for market_scan.
# This may be replaced when dependencies are built.
