// Ablations of the design decisions DESIGN.md calls out:
//
//   1. cleaning — run the strategies on RAW vs CLEANED streams per treatment,
//      quantifying how much the TCP-like filter is worth and how much Maronna
//      self-defends without it;
//   2. PSD repair — how often the pairwise-Maronna market matrix is actually
//      indefinite, how negative its spectrum goes, and how much the
//      eigenvalue-clipping repair perturbs the coefficients.
//
// (Two further ablations live in the microbenches: incremental vs batch
// Pearson in bench_correlation, channel capacity in bench_pipeline.)
#include <cstdio>

#include "common/cli.hpp"
#include "core/backtester.hpp"
#include "core/metrics.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"
#include "stats/corr_engine.hpp"
#include "stats/psd.hpp"

namespace {

using namespace mm;

struct StrategyOutcome {
  double mean_daily_return = 0.0;
  std::uint64_t trades = 0;
};

StrategyOutcome run_all_pairs(const std::vector<std::vector<double>>& bam,
                              stats::Ctype ctype) {
  core::StrategyParams params = core::ParamGrid::base();
  params.ctype = ctype;
  params.divergence = 0.0005;
  const auto market = core::compute_market_corr_series(
      bam, params.corr_window, ctype != stats::Ctype::pearson);
  const auto pairs = stats::all_pairs(bam.size());
  StrategyOutcome outcome;
  double sum = 0.0;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto trades =
        core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k);
    std::vector<double> returns;
    for (const auto& t : trades) returns.push_back(t.trade_return);
    sum += core::cumulative_return(returns);
    outcome.trades += trades.size();
  }
  outcome.mean_daily_return = sum / static_cast<double>(pairs.size());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("repro_ablations", "Cleaning and PSD-repair ablations");
  auto& symbols = cli.add_int("symbols", 10, "universe size");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.4;
  gen.bad_tick_rate = 0.008;  // dirtier than default to stress the ablation
  const md::SyntheticDay day(universe, gen, 0);

  // --- ablation 1: cleaning on/off ----------------------------------------
  const auto raw_bam = md::sample_bam_series(day.quotes(), n, gen.session, 30);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto clean_bam =
      md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);

  std::printf("ablation 1 — TCP-like cleaning filter "
              "(%zu symbols, %zu quotes, %zu corrupted at source)\n\n",
              n, day.quotes().size(), day.corrupted_count());
  std::printf("  %-10s %16s %10s %16s %10s %14s\n", "Ctype", "raw mean ret",
              "raw trades", "clean mean ret", "trades", "cleaning gain");
  for (const auto ctype : stats::all_ctypes) {
    const auto raw = run_all_pairs(raw_bam, ctype);
    const auto clean = run_all_pairs(clean_bam, ctype);
    std::printf("  %-10s %15.3f%% %10llu %15.3f%% %10llu %13.3f%%\n",
                stats::to_string(ctype), raw.mean_daily_return * 100.0,
                static_cast<unsigned long long>(raw.trades),
                clean.mean_daily_return * 100.0,
                static_cast<unsigned long long>(clean.trades),
                (clean.mean_daily_return - raw.mean_daily_return) * 100.0);
  }
  std::printf("\nshape check: the raw-stream numbers are FANTASY — the backtest\n"
              "\"executes\" against fat-finger prints and far-out test quotes at\n"
              "prices nobody could trade, booking enormous fake reversion profits.\n"
              "That is precisely why §III cleans before analyzing: the filtered\n"
              "stream yields sane sub-percent daily returns and a stable trade\n"
              "count across treatments.\n\n");

  // --- ablation 2: PSD repair of the pairwise-Maronna matrix ---------------
  std::printf("ablation 2 — PSD repair of the pairwise Maronna matrix (§IV "
              "caveat)\n\n");
  // Short windows + the raw (dirty) stream is where pairwise estimation loses
  // PSD: every pair sees a different subset of outliers, so the assembled
  // matrix stops being a single consistent scatter.
  constexpr std::size_t psd_window = 15;
  stats::CorrEngineConfig cfg;
  cfg.type = stats::Ctype::maronna;
  cfg.window = psd_window;
  stats::CorrelationCalculator calc(cfg, n);
  std::vector<std::vector<double>> returns(n);
  for (std::size_t i = 0; i < n; ++i) returns[i] = md::log_returns(raw_bam[i]);

  int checked = 0, indefinite = 0;
  double worst_eigenvalue = 0.0;
  double worst_repair_delta = 0.0;
  std::vector<double> step(n);
  for (std::size_t s = 0; s < returns[0].size(); ++s) {
    for (std::size_t i = 0; i < n; ++i) step[i] = returns[i][s];
    calc.push(step);
    if (!calc.ready() || s % 10 != 0) continue;
    const auto matrix = calc.matrix();
    const double min_eig = stats::min_eigenvalue(matrix);
    ++checked;
    if (min_eig < -1e-9) {
      ++indefinite;
      worst_eigenvalue = std::min(worst_eigenvalue, min_eig);
      const auto repaired = stats::nearest_psd_correlation(matrix);
      worst_repair_delta = std::max(worst_repair_delta,
                                    stats::SymMatrix::max_abs_diff(matrix, repaired));
    }
  }
  std::printf("  matrices checked:        %d (every 10th interval, M = %zu, raw "
              "stream)\n",
              checked, psd_window);
  std::printf("  indefinite (not PSD):    %d (%.1f%%)\n", indefinite,
              checked > 0 ? 100.0 * indefinite / checked : 0.0);
  std::printf("  worst min eigenvalue:    %.3e\n", worst_eigenvalue);
  std::printf("  worst repair |delta C|:  %.3e\n", worst_repair_delta);
  std::printf("\nshape check: pairwise robust estimation does break PSD (the\n"
              "paper's Approach 2 complaint), and the clipping repair fixes it\n"
              "with only small coefficient perturbations.\n");
  return 0;
}
