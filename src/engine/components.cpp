#include "engine/components.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "core/strategy.hpp"
#include "dagflow/context.hpp"
#include "engine/messages.hpp"
#include "obs/heartbeat.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/tickdb.hpp"
#include "stats/cluster.hpp"
#include "stats/windows.hpp"

namespace mm::engine {
namespace {

void bump(StageStats* stats, std::uint64_t rec_in, std::uint64_t rec_out,
          std::uint64_t it_in, std::uint64_t it_out) {
  if (stats == nullptr) return;
  stats->records_in += rec_in;
  stats->records_out += rec_out;
  stats->items_in += it_in;
  stats->items_out += it_out;
}

// Sleep until the paced replay clock reaches `target_wall` — in chunks no
// longer than the heartbeat interval, beating between chunks, so a pacing
// collector reads as idle-but-alive to the monitor instead of going silent
// for the duration of a long sleep.
void paced_sleep_until(std::chrono::steady_clock::time_point target_wall) {
  obs::Pulse& pulse = obs::pulse_this_thread();
  const auto max_chunk = pulse.armed()
                             ? pulse.interval()
                             : std::chrono::nanoseconds{std::chrono::milliseconds{50}};
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= target_wall) return;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::nanoseconds>(target_wall - now);
    std::this_thread::sleep_for(remaining < max_chunk ? remaining : max_chunk);
    pulse.beat();
  }
}

void emit_quotes(dag::Context& ctx, const std::vector<md::Quote>& quotes,
                 std::size_t batch_size, StageStats* stats, double replay_speedup) {
  const bool paced = replay_speedup > 0.0 && !quotes.empty();
  const auto wall_start = std::chrono::steady_clock::now();
  const md::TimeMs day_start = paced ? quotes.front().ts_ms : 0;

  QuoteBatch batch;
  batch.quotes.reserve(batch_size);
  const auto flush = [&] {
    if (paced) {
      // Emit each batch when its FIRST quote's market time comes due on the
      // compressed clock; in-batch spread is below the pacing resolution.
      const double elapsed_market_ms =
          static_cast<double>(batch.quotes.front().ts_ms - day_start);
      paced_sleep_until(wall_start +
                        std::chrono::nanoseconds{static_cast<std::int64_t>(
                            elapsed_market_ms * 1e6 / replay_speedup)});
    }
    ctx.emit(0, batch.pack());
    bump(stats, 0, 1, 0, batch.quotes.size());
    batch.quotes.clear();
  };
  for (const auto& q : quotes) {
    batch.quotes.push_back(q);
    if (batch.quotes.size() == batch_size) flush();
  }
  if (!batch.quotes.empty()) flush();
}

// Per-stage step histogram, registered on the run's registry (null when the
// run records no metrics; ObsSpan treats a null histogram as "don't sample").
obs::Histogram* step_histogram(dag::Context& ctx, const char* name) {
  return ctx.metrics() != nullptr ? &ctx.metrics()->histogram(name) : nullptr;
}

}  // namespace

dag::NodeFn make_file_collector(std::vector<md::Quote> quotes, std::size_t batch_size,
                                StageStats* stats, double replay_speedup) {
  MM_ASSERT(batch_size > 0);
  return [quotes = std::move(quotes), batch_size, stats,
          replay_speedup](dag::Context& ctx) {
    emit_quotes(ctx, quotes, batch_size, stats, replay_speedup);
  };
}

dag::NodeFn make_db_collector(std::string tickdb_root, md::Date date,
                              std::size_t batch_size, StageStats* stats,
                              double replay_speedup) {
  MM_ASSERT(batch_size > 0);
  return [root = std::move(tickdb_root), date, batch_size, stats,
          replay_speedup](dag::Context& ctx) {
    auto db = md::TickDb::open(root);
    MM_ASSERT_MSG(db.has_value(), "db collector: cannot open tickdb");
    auto quotes = db->read_day(date);
    MM_ASSERT_MSG(quotes.has_value(), "db collector: cannot read day");
    emit_quotes(ctx, *quotes, batch_size, stats, replay_speedup);
  };
}

dag::NodeFn make_shared_collector(std::shared_ptr<const std::vector<md::Quote>> day,
                                  std::size_t batch_size, StageStats* stats,
                                  double replay_speedup) {
  MM_ASSERT(batch_size > 0);
  MM_ASSERT_MSG(day != nullptr, "shared collector needs a day");
  return [day = std::move(day), batch_size, stats,
          replay_speedup](dag::Context& ctx) {
    emit_quotes(ctx, *day, batch_size, stats, replay_speedup);
  };
}

dag::NodeFn make_cleaner(std::size_t symbols, md::CleanerConfig config,
                         StageStats* stats) {
  return [symbols, config, stats](dag::Context& ctx) {
    md::QuoteCleaner cleaner(symbols, config);
    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                RecordType::quote_batch);
      auto batch = QuoteBatch::unpack(u);
      const std::size_t in_count = batch.quotes.size();

      QuoteBatch out;
      out.quotes.reserve(batch.quotes.size());
      for (const auto& q : batch.quotes)
        if (cleaner.accept(q)) out.quotes.push_back(q);
      if (!out.quotes.empty()) {
        const std::size_t out_count = out.quotes.size();
        ctx.emit(0, out.pack());
        bump(stats, 1, 1, in_count, out_count);
      } else {
        bump(stats, 1, 0, in_count, 0);
      }
    }
  };
}

dag::NodeFn make_snapshot_stage(std::size_t symbols, md::Session session,
                                std::int64_t delta_s, std::vector<double> seed_prices,
                                StageStats* stats) {
  MM_ASSERT(seed_prices.size() == symbols);
  return [symbols, session, delta_s, seed = std::move(seed_prices),
          stats](dag::Context& ctx) {
    const std::int64_t smax = session.interval_count(delta_s);
    std::vector<double> last_bam = seed;
    std::vector<double> prev_prices = seed;
    std::int64_t next_emit = 0;  // first interval not yet snapshotted

    const auto emit_through = [&](std::int64_t limit) {
      // Emit snapshots for every interval strictly below `limit`.
      for (; next_emit < limit && next_emit < smax; ++next_emit) {
        Snapshot snap;
        snap.interval = next_emit;
        snap.prices = last_bam;
        if (next_emit > 0) {
          snap.returns.resize(symbols);
          for (std::size_t i = 0; i < symbols; ++i)
            snap.returns[i] = std::log(last_bam[i] / prev_prices[i]);
        }
        prev_prices = last_bam;
        ctx.emit(0, snap.pack());
        bump(stats, 0, 1, 0, 1);
      }
    };

    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                RecordType::quote_batch);
      const auto batch = QuoteBatch::unpack(u);
      bump(stats, 1, 0, batch.quotes.size(), 0);
      for (const auto& q : batch.quotes) {
        const std::int64_t s = session.interval_of(q.ts_ms, delta_s);
        if (s < 0 || q.symbol >= symbols) continue;
        // A quote in interval s means intervals < s are complete.
        emit_through(s);
        last_bam[q.symbol] = q.bam();
      }
    }
    // End of stream: flush the remaining intervals of the session.
    emit_through(smax);
  };
}

dag::NodeFn make_correlation_stage(std::size_t symbols, std::int64_t corr_window,
                                   bool need_maronna,
                                   stats::MaronnaConfig maronna_config, int fan_out,
                                   StageStats* stats, stats::CorrStore* store,
                                   stats::CorrKey store_key,
                                   std::int64_t expected_frames) {
  MM_ASSERT(fan_out >= 1);
  return [symbols, corr_window, need_maronna, maronna_config, fan_out, stats,
          store, store_key = std::move(store_key),
          expected_frames](dag::Context& ctx) {
    // The lease is taken when the NODE runs (not at wiring time): concurrent
    // pipelines over the same key serialize here — one computes, the rest
    // block until the day is published, then replay.
    std::optional<stats::CorrStore::Lease> lease;
    if (store != nullptr) lease.emplace(store->acquire(store_key));

    if (lease && lease->hit()) {
      // Memoized day: replay the stored packed frames one-for-one against
      // the incoming snapshots. The bytes are exactly what a cold run would
      // emit, so every consumer downstream is bit-identical.
      const auto day = lease->data();  // keep alive across eviction
      std::size_t next = 0;
      while (auto msg = ctx.recv()) {
        MM_ASSERT(peek_type(msg->bytes) == RecordType::snapshot);
        bump(stats, 1, 0, 1, 0);
        MM_ASSERT_MSG(next < day->frames.size(),
                      "memoized day shorter than the snapshot stream");
        const auto& packed = day->frames[next++];
        for (int port = 0; port < fan_out; ++port) ctx.emit(port, packed);
        bump(stats, 0, static_cast<std::uint64_t>(fan_out), 0, 1);
      }
      return;
    }

    const auto pairs = stats::all_pairs(symbols);
    obs::Histogram* step_ns = step_histogram(ctx, "engine.correlation.step_ns");
    stats::ReturnWindows windows(symbols, static_cast<std::size_t>(corr_window),
                                 /*track_cross_sums=*/true);
    std::vector<double> wx(static_cast<std::size_t>(corr_window));
    std::vector<double> wy(static_cast<std::size_t>(corr_window));
    stats::CorrDay recorded;
    if (lease && expected_frames > 0)
      recorded.frames.reserve(static_cast<std::size_t>(expected_frames));

    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) == RecordType::snapshot);
      auto snap = Snapshot::unpack(u);
      bump(stats, 1, 0, 1, 0);

      obs::ObsSpan step(ctx.ring(), "corr-step", step_ns);
      if (!snap.returns.empty()) windows.push(snap.returns);

      CorrFrame frame;
      frame.interval = snap.interval;
      frame.prices = std::move(snap.prices);
      frame.valid = windows.ready() && snap.interval >= corr_window;
      if (frame.valid) {
        frame.pearson.resize(pairs.size());
        if (need_maronna) frame.maronna.resize(pairs.size());
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          frame.pearson[k] = windows.pearson(pairs[k].i, pairs[k].j);
          if (need_maronna) {
            windows.copy_window(pairs[k].i, wx.data());
            windows.copy_window(pairs[k].j, wy.data());
            frame.maronna[k] =
                stats::maronna(wx.data(), wy.data(), wx.size(), maronna_config);
          }
        }
      }
      step.close();
      const auto packed = frame.pack();
      for (int port = 0; port < fan_out; ++port) ctx.emit(port, packed);
      if (lease) recorded.frames.push_back(packed);
      bump(stats, 0, static_cast<std::uint64_t>(fan_out), 0, 1);
    }

    // Publish only a complete day: a run cut short by a fault upstream
    // produced fewer frames, and the lease destructor abandons it (handing
    // ownership to any blocked waiter).
    if (lease && expected_frames > 0 &&
        recorded.frames.size() == static_cast<std::size_t>(expected_frames))
      lease->publish(std::move(recorded));
  };
}

dag::NodeFn make_cluster_stage(std::size_t symbols, int target_clusters,
                               std::int64_t cadence, StageStats* stats) {
  MM_ASSERT(cadence >= 1);
  return [symbols, target_clusters, cadence, stats](dag::Context& ctx) {
    const auto pairs = stats::all_pairs(symbols);
    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                RecordType::corr_frame);
      const auto frame = CorrFrame::unpack(u);
      bump(stats, 1, 0, 1, 0);
      if (!frame.valid || frame.interval % cadence != 0) continue;

      stats::SymMatrix matrix(symbols, 0.0);
      matrix.fill_diagonal(1.0);
      for (std::size_t k = 0; k < pairs.size(); ++k)
        matrix.set(pairs[k].i, pairs[k].j, frame.pearson[k]);
      const auto clusters = stats::single_linkage_clusters(matrix, target_clusters);

      ClusterSnapshot snapshot;
      snapshot.interval = frame.interval;
      snapshot.cluster_count = clusters.cluster_count;
      snapshot.assignment.assign(clusters.assignment.begin(),
                                 clusters.assignment.end());
      ctx.emit(0, snapshot.pack());
      bump(stats, 0, 1, 0, 1);
    }
  };
}

dag::GroupNodeFn make_parallel_correlation_stage(std::size_t symbols,
                                                 std::int64_t corr_window,
                                                 bool need_maronna,
                                                 stats::MaronnaConfig maronna_config,
                                                 int fan_out, StageStats* stats,
                                                 std::chrono::milliseconds replica_deadline) {
  MM_ASSERT(fan_out >= 1);
  return [symbols, corr_window, need_maronna, maronna_config, fan_out, stats,
          replica_deadline](dag::Context* ctx, mpi::Comm& group) {
    const auto all = stats::all_pairs(symbols);
    const bool bounded = replica_deadline.count() > 0;

    stats::ReturnWindows windows(symbols, static_cast<std::size_t>(corr_window),
                                 /*track_cross_sums=*/true);
    std::vector<double> wx(static_cast<std::size_t>(corr_window));
    std::vector<double> wy(static_cast<std::size_t>(corr_window));

    const auto estimate = [&](const stats::PairIndex& p, mpi::Packer& out) {
      out.put<double>(windows.pearson(p.i, p.j));
      if (need_maronna) {
        windows.copy_window(p.i, wx.data());
        windows.copy_window(p.j, wy.data());
        out.put<double>(
            stats::maronna(wx.data(), wy.data(), wx.size(), maronna_config));
      }
    };

    // Group protocol, one round per snapshot. The leader sends each live
    // replica {round_step, round_no, alive, interval, returns}; replicas
    // answer {round_no, shard doubles}. Pair k is owned by
    // alive[k % alive.size()] — the rotation reshards automatically when a
    // replica drops out. round_no makes duplicated frames (fault injection)
    // detectable on both sides. round_done terminates a replica.
    constexpr int tag_round = 1;
    constexpr int tag_shard = 2;
    constexpr std::uint8_t round_step = 1;
    constexpr std::uint8_t round_done = 0;

    if (group.rank() != 0) {
      // Replica: serve rounds until the leader says done or goes silent past
      // the deadline (leader dead, or this replica resharded away).
      std::uint64_t next_round = 0;
      while (true) {
        std::vector<std::uint8_t> bytes;
        if (bounded) {
          auto r = group.recv_for(replica_deadline, 0, tag_round);
          if (!r) return;
          bytes = std::move(*r);
        } else {
          bytes = group.recv(0, tag_round);
        }
        mpi::Unpacker u(bytes);
        const auto kind = u.get<std::uint8_t>();
        const auto round_no = u.get<std::uint64_t>();
        if (kind == round_done) return;
        if (round_no < next_round) continue;  // duplicated round frame
        next_round = round_no + 1;
        const auto alive = u.get_vector<std::int32_t>();
        const auto interval = u.get<std::int64_t>();
        const auto returns = u.get_vector<double>();
        if (!returns.empty()) windows.push(returns);
        const bool valid = windows.ready() && interval >= corr_window;

        mpi::Packer shard;
        shard.put<std::uint64_t>(round_no);
        if (valid) {
          for (std::size_t k = 0; k < all.size(); ++k)
            if (alive[k % alive.size()] == group.rank()) estimate(all[k], shard);
        }
        group.send(0, tag_shard, shard.take());
      }
      return;
    }

    // Leader.
    obs::Histogram* step_ns = step_histogram(*ctx, "engine.correlation.step_ns");
    std::vector<std::int32_t> alive;
    for (int r = 0; r < group.size(); ++r) alive.push_back(r);
    std::uint64_t round_no = 0;

    while (auto msg = ctx->recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                RecordType::snapshot);
      auto snap = Snapshot::unpack(u);
      bump(stats, 1, 0, 1, 0);
      obs::ObsSpan step(ctx->ring(), "corr-round", step_ns);

      // The assignment every party uses this round (alive may shrink below).
      const std::vector<std::int32_t> round_alive = alive;

      mpi::Packer round;
      round.put<std::uint8_t>(round_step);
      round.put<std::uint64_t>(round_no);
      round.put_vector(round_alive);
      round.put<std::int64_t>(snap.interval);
      round.put_vector(snap.returns);
      const auto round_bytes = round.take();
      for (const auto m : round_alive)
        if (m != 0) group.send(m, tag_round, round_bytes);

      if (!snap.returns.empty()) windows.push(snap.returns);
      const bool valid = windows.ready() && snap.interval >= corr_window;

      // Bounded gather: a replica that misses the deadline is resharded away
      // for good (a missed round also desyncs its window mirror, so it must
      // never contribute again) and its pairs are recomputed locally below.
      std::vector<std::vector<std::uint8_t>> shard_of(
          static_cast<std::size_t>(group.size()));
      std::vector<bool> have(static_cast<std::size_t>(group.size()), false);
      for (const auto m : round_alive) {
        if (m == 0) continue;
        const auto deadline = std::chrono::steady_clock::now() + replica_deadline;
        while (true) {
          std::vector<std::uint8_t> bytes;
          if (bounded) {
            const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            auto r = group.recv_for(std::max(budget, std::chrono::milliseconds{1}),
                                    m, tag_shard);
            if (!r) {
              alive.erase(std::remove(alive.begin(), alive.end(), m), alive.end());
              if (stats) stats->faults.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            bytes = std::move(*r);
          } else {
            bytes = group.recv(m, tag_shard);
          }
          mpi::Unpacker su(bytes);
          if (su.get<std::uint64_t>() != round_no) continue;  // stale duplicate
          shard_of[static_cast<std::size_t>(m)] = std::move(bytes);
          have[static_cast<std::size_t>(m)] = true;
          break;
        }
      }

      // Assemble the canonical-order frame: the leader computes its own
      // shard and stands in for any replica that missed the deadline; it
      // mirrors every window, so the frame matches the healthy run exactly.
      CorrFrame frame;
      frame.interval = snap.interval;
      frame.prices = std::move(snap.prices);
      frame.valid = valid;
      if (valid) {
        frame.pearson.resize(all.size());
        if (need_maronna) frame.maronna.resize(all.size());
        std::vector<std::optional<mpi::Unpacker>> unpackers(
            static_cast<std::size_t>(group.size()));
        for (const auto m : round_alive) {
          if (m == 0 || !have[static_cast<std::size_t>(m)]) continue;
          unpackers[static_cast<std::size_t>(m)].emplace(
              shard_of[static_cast<std::size_t>(m)]);
          unpackers[static_cast<std::size_t>(m)]->get<std::uint64_t>();
        }
        for (std::size_t k = 0; k < all.size(); ++k) {
          const auto owner = round_alive[k % round_alive.size()];
          if (owner != 0 && have[static_cast<std::size_t>(owner)]) {
            auto& up = *unpackers[static_cast<std::size_t>(owner)];
            frame.pearson[k] = up.get<double>();
            if (need_maronna) frame.maronna[k] = up.get<double>();
          } else {
            frame.pearson[k] = windows.pearson(all[k].i, all[k].j);
            if (need_maronna) {
              windows.copy_window(all[k].i, wx.data());
              windows.copy_window(all[k].j, wy.data());
              frame.maronna[k] =
                  stats::maronna(wx.data(), wy.data(), wx.size(), maronna_config);
            }
          }
        }
      }
      step.close();
      const auto packed = frame.pack();
      for (int port = 0; port < fan_out; ++port) ctx->emit(port, packed);
      bump(stats, 0, static_cast<std::uint64_t>(fan_out), 0, 1);
      ++round_no;
    }

    // End of stream: release the surviving replicas.
    mpi::Packer done;
    done.put<std::uint8_t>(round_done);
    done.put<std::uint64_t>(round_no);
    const auto done_bytes = done.take();
    for (const auto m : alive)
      if (m != 0) group.send(m, tag_round, done_bytes);
  };
}

dag::NodeFn make_strategy_stage(core::StrategyParams params,
                                std::vector<stats::PairIndex> pairs,
                                std::int32_t strategy_id, std::int64_t smax,
                                StageStats* stats) {
  return [params, pairs = std::move(pairs), strategy_id, smax,
          stats](dag::Context& ctx) {
    obs::Histogram* step_ns = step_histogram(ctx, "engine.strategy.step_ns");
    std::vector<core::PairStrategy> machines;
    machines.reserve(pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) machines.emplace_back(params, smax);

    // Map each of my pairs to its index in the canonical all-pairs order the
    // CorrFrame vectors use.
    std::vector<std::size_t> frame_index(pairs.size());

    const auto emit_order = [&](std::int64_t s, const stats::PairIndex& pr, double di,
                                double dj, double pi, double pj, bool entry) {
      Order order;
      order.interval = s;
      order.strategy_id = strategy_id;
      order.symbol_i = pr.i;
      order.symbol_j = pr.j;
      order.shares_i = di;
      order.shares_j = dj;
      order.price_i = pi;
      order.price_j = pj;
      order.is_entry = entry ? 1 : 0;
      ctx.emit(0, order.pack());
      bump(stats, 0, 1, 0, 1);
    };

    bool indexed = false;
    std::vector<double> held_i(pairs.size(), 0.0), held_j(pairs.size(), 0.0);
    std::vector<double> last_pi(pairs.size(), 0.0), last_pj(pairs.size(), 0.0);
    std::int64_t last_interval = -1;

    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      MM_ASSERT(static_cast<RecordType>(u.get<std::uint8_t>()) ==
                RecordType::corr_frame);
      const auto frame = CorrFrame::unpack(u);
      bump(stats, 1, 0, 1, 0);
      last_interval = frame.interval;

      if (!indexed) {
        const std::size_t n = frame.prices.size();
        const auto canonical = stats::all_pairs(n);
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          std::size_t found = canonical.size();
          for (std::size_t c = 0; c < canonical.size(); ++c)
            if (canonical[c].i == pairs[k].i && canonical[c].j == pairs[k].j) found = c;
          MM_ASSERT_MSG(found < canonical.size(), "pair not in universe");
          frame_index[k] = found;
        }
        indexed = true;
      }

      obs::ObsSpan step(ctx.ring(), "strategy-step", step_ns);
      for (std::size_t k = 0; k < pairs.size(); ++k) {
        auto& machine = machines[k];
        const double pi = frame.prices[pairs[k].i];
        const double pj = frame.prices[pairs[k].j];
        last_pi[k] = pi;
        last_pj[k] = pj;

        double corr = 0.0;
        if (frame.valid) {
          const double pearson_r = frame.pearson[frame_index[k]];
          switch (params.ctype) {
            case stats::Ctype::pearson:
              corr = pearson_r;
              break;
            case stats::Ctype::maronna:
              corr = frame.maronna[frame_index[k]];
              break;
            case stats::Ctype::combined:
              corr = stats::combine(pearson_r, frame.maronna[frame_index[k]]);
              break;
          }
        }

        const bool was_open = machine.in_position();
        const std::size_t trades_before = machine.trades().size();
        machine.step(frame.interval, pi, pj, corr, frame.valid);

        if (!was_open && machine.in_position()) {
          held_i[k] = machine.position_shares_i();
          held_j[k] = machine.position_shares_j();
          emit_order(frame.interval, pairs[k], held_i[k], held_j[k],
                     machine.position_entry_price_i(),
                     machine.position_entry_price_j(), true);
        }
        if (machine.trades().size() > trades_before) {
          const auto& t = machine.trades().back();
          emit_order(frame.interval, pairs[k], -t.shares_i, -t.shares_j,
                     t.exit_price_i, t.exit_price_j, false);
          held_i[k] = held_j[k] = 0.0;
        }
      }
    }

    // End of day: flatten and summarize.
    StrategySummary summary;
    summary.strategy_id = strategy_id;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      auto& machine = machines[k];
      const std::size_t trades_before = machine.trades().size();
      machine.finish();
      if (machine.trades().size() > trades_before) {
        const auto& t = machine.trades().back();
        emit_order(last_interval, pairs[k], -t.shares_i, -t.shares_j, t.exit_price_i,
                   t.exit_price_j, false);
      }
      for (const auto& t : machine.trades()) {
        ++summary.trades;
        summary.total_pnl += t.pnl;
        summary.trade_returns.push_back(t.trade_return);
      }
    }
    ctx.emit(0, summary.pack());
    bump(stats, 0, 1, 0, 0);
  };
}

dag::NodeFn make_master(MasterReport* report, RiskConfig risk, StageStats* stats) {
  MM_ASSERT(report != nullptr);
  return [report, risk, stats](dag::Context& ctx) {
    std::map<std::int64_t, std::uint64_t> baskets;  // interval -> orders netted
    // Per-(interval, symbol) signed share flow for netting accounting.
    std::map<std::int64_t, std::map<std::uint32_t, double>> basket_flow;
    std::map<std::uint32_t, double> last_price;

    const auto apply_leg = [&](const Order& order, std::uint32_t symbol,
                               double shares, double price) {
      report->net_shares[symbol] += shares;
      last_price[symbol] = price;
      report->raw_order_shares += std::abs(shares);
      basket_flow[order.interval][symbol] += shares;
      if (risk.max_symbol_shares > 0.0 &&
          std::abs(report->net_shares[symbol]) > risk.max_symbol_shares)
        ++report->symbol_limit_breaches;
    };

    while (auto msg = ctx.recv()) {
      mpi::Unpacker u(msg->bytes);
      const auto type = static_cast<RecordType>(u.get<std::uint8_t>());
      bump(stats, 1, 0, 0, 0);
      if (type == RecordType::order) {
        const auto order = Order::unpack(u);
        ++report->orders;
        report->order_log.push_back(order);
        if (order.is_entry) ++report->entries;
        else ++report->exits;
        apply_leg(order, order.symbol_i, order.shares_i, order.price_i);
        apply_leg(order, order.symbol_j, order.shares_j, order.price_j);
        ++baskets[order.interval];

        double gross = 0.0;
        for (const auto& [symbol, net] : report->net_shares)
          gross += std::abs(net) * last_price[symbol];
        report->peak_gross_notional = std::max(report->peak_gross_notional, gross);
        if (risk.max_gross_notional > 0.0 && gross > risk.max_gross_notional)
          ++report->gross_limit_breaches;
      } else if (type == RecordType::strategy_summary) {
        auto summary = StrategySummary::unpack(u);
        report->trades += summary.trades;
        report->total_pnl += summary.total_pnl;
        report->trade_returns.insert(report->trade_returns.end(),
                                     summary.trade_returns.begin(),
                                     summary.trade_returns.end());
        report->strategy_summaries.push_back(std::move(summary));
      } else {
        MM_ASSERT_MSG(false, "master: unexpected record type");
      }
    }
    report->basket_count = baskets.size();
    // Arrival order across workers is a race; sort for deterministic reports.
    std::sort(report->strategy_summaries.begin(), report->strategy_summaries.end(),
              [](const StrategySummary& a, const StrategySummary& b) {
                return a.strategy_id < b.strategy_id;
              });
    for (const auto& [interval, flows] : basket_flow)
      for (const auto& [symbol, net] : flows)
        report->netted_order_shares += std::abs(net);

    // Degradation section: which strategy streams ended in a failure marker
    // (or silence) rather than a clean end-of-day.
    report->degraded = ctx.upstream_failed();
    report->failed_strategies = ctx.failed_input_ports();
  };
}

}  // namespace mm::engine
