file(REMOVE_RECURSE
  "CMakeFiles/test_psd.dir/test_psd.cpp.o"
  "CMakeFiles/test_psd.dir/test_psd.cpp.o.d"
  "test_psd"
  "test_psd.pdb"
  "test_psd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
