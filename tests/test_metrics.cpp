// Tests for the performance metrics (Eqs. 1-9).
#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace mm::core {
namespace {

TEST(CumulativeReturn, CompoundsMultiplicatively) {
  // (1.1)(0.9) - 1 = -0.01.
  EXPECT_NEAR(cumulative_return({0.1, -0.1}), -0.01, 1e-12);
  EXPECT_NEAR(cumulative_return({0.01, 0.01, 0.01}), 1.01 * 1.01 * 1.01 - 1.0, 1e-12);
}

TEST(CumulativeReturn, EmptyIsFlat) {
  EXPECT_DOUBLE_EQ(cumulative_return({}), 0.0);
}

TEST(CumulativeReturn, OrderInvariant) {
  EXPECT_NEAR(cumulative_return({0.05, -0.02, 0.01}),
              cumulative_return({0.01, 0.05, -0.02}), 1e-12);
}

TEST(EquityCurve, RunningCompound) {
  const auto curve = equity_curve({0.1, 0.1, -0.5});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0], 0.1, 1e-12);
  EXPECT_NEAR(curve[1], 0.21, 1e-12);
  EXPECT_NEAR(curve[2], 1.21 * 0.5 - 1.0, 1e-12);
}

TEST(MaxDrawdown, MonotoneGrowthIsZero) {
  EXPECT_DOUBLE_EQ(max_drawdown({0.01, 0.02, 0.005}), 0.0);
  EXPECT_DOUBLE_EQ(max_drawdown({}), 0.0);
}

TEST(MaxDrawdown, WorstPeakToValley) {
  // Wealth: 1.1, 1.21, 0.968, 1.0648. Peak 1.21, valley 0.968 -> dd 0.242.
  EXPECT_NEAR(max_drawdown({0.1, 0.1, -0.2, 0.1}), 0.242, 1e-12);
}

TEST(MaxDrawdown, InitialLossCountsFromStartingWealth) {
  // Wealth drops from 1.0 to 0.9: drawdown 0.1 even with no prior gain.
  EXPECT_NEAR(max_drawdown({-0.1}), 0.1, 1e-12);
}

TEST(MaxDrawdown, LaterDeeperValleyWins) {
  // Two dips; the second (from the higher peak) is deeper.
  const std::vector<double> r = {0.2, -0.05, 0.3, -0.25, -0.1};
  // Wealth: 1.2, 1.14, 1.482, 1.1115, 1.00035. Peak 1.482 -> dd 0.48165.
  EXPECT_NEAR(max_drawdown(r), 1.482 - 1.00035, 1e-9);
}

TEST(WinLoss, CountsStrictSigns) {
  const auto wl = win_loss({0.01, -0.02, 0.0, 0.03, -0.01, 0.005});
  EXPECT_EQ(wl.wins, 3u);
  EXPECT_EQ(wl.losses, 2u);  // zero return is neither
  EXPECT_DOUBLE_EQ(wl.ratio(), 1.5);
}

TEST(WinLoss, ZeroLossesFlooredAtOne) {
  const auto wl = win_loss({0.01, 0.02});
  EXPECT_DOUBLE_EQ(wl.ratio(), 2.0);
}

TEST(WinLoss, Merge) {
  WinLoss a = win_loss({0.1, 0.1, -0.1});
  const WinLoss b = win_loss({-0.1, 0.1});
  a.merge(b);
  EXPECT_EQ(a.wins, 3u);
  EXPECT_EQ(a.losses, 2u);
}

TEST(WinLoss, EmptyIsZeroRatio) {
  EXPECT_DOUBLE_EQ(win_loss({}).ratio(), 0.0);
}

TEST(ExitBreakdown, CountsByReason) {
  std::vector<Trade> trades(5);
  trades[0].exit_reason = ExitReason::retracement;
  trades[1].exit_reason = ExitReason::retracement;
  trades[2].exit_reason = ExitReason::max_holding;
  trades[3].exit_reason = ExitReason::end_of_day;
  trades[4].exit_reason = ExitReason::stop_loss;
  const auto breakdown = exit_breakdown(trades);
  EXPECT_EQ(breakdown.total, 5u);
  EXPECT_EQ(breakdown.counts[static_cast<int>(ExitReason::retracement)], 2u);
  EXPECT_EQ(breakdown.counts[static_cast<int>(ExitReason::max_holding)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<int>(ExitReason::end_of_day)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<int>(ExitReason::stop_loss)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<int>(ExitReason::correlation_reversion)], 0u);
}

TEST(CompoundAcross, MatchesEquation4And5Semantics) {
  // Eq. (4)/(5): compound the per-pair (or per-paramset) cumulative returns.
  const std::vector<double> per_pair = {0.01, -0.005, 0.02};
  EXPECT_NEAR(compound_across(per_pair),
              1.01 * 0.995 * 1.02 - 1.0, 1e-12);
}

// --- property-style checks over random return streams -----------------------

TEST(MetricsProperties, RandomStreamInvariants) {
  std::uint64_t state = 777;
  const auto next_return = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Returns in (-0.2, 0.2).
    return (static_cast<double>((state >> 33) % 4000) - 2000.0) / 10000.0;
  };

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> returns(40);
    for (auto& r : returns) r = next_return();

    const auto curve = equity_curve(returns);
    // Final equity-curve point equals the cumulative return.
    EXPECT_NEAR(curve.back(), cumulative_return(returns), 1e-12);
    // Drawdown is bounded by the worst curve excursion and is non-negative.
    const double dd = max_drawdown(returns);
    EXPECT_GE(dd, 0.0);
    double peak = 1.0, worst = 0.0;
    double wealth = 1.0;
    for (double r : returns) {
      wealth *= 1.0 + r;
      peak = std::max(peak, wealth);
      worst = std::max(worst, peak - wealth);
    }
    EXPECT_NEAR(dd, worst, 1e-12);
    // Appending a positive return never increases the drawdown.
    auto extended = returns;
    extended.push_back(0.05);
    EXPECT_LE(max_drawdown(returns), max_drawdown(extended) + 1e-12);
    // Win/loss counts partition the non-zero returns.
    const auto wl = win_loss(returns);
    std::size_t nonzero = 0;
    for (double r : returns)
      if (r != 0.0) ++nonzero;
    EXPECT_EQ(wl.wins + wl.losses, nonzero);
  }
}

TEST(MetricsProperties, AllPositiveStreamHasZeroDrawdownAndInfiniteWins) {
  const std::vector<double> gains = {0.01, 0.002, 0.03, 0.004};
  EXPECT_DOUBLE_EQ(max_drawdown(gains), 0.0);
  const auto wl = win_loss(gains);
  EXPECT_EQ(wl.losses, 0u);
  EXPECT_DOUBLE_EQ(wl.ratio(), 4.0);  // floored denominator
  EXPECT_GT(cumulative_return(gains), 0.0);
}

}  // namespace
}  // namespace mm::core
