#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.hpp"

namespace mm::json {

namespace {

const Value& null_value() {
  static const Value v;
  return v;
}

}  // namespace

const Value& Value::at(std::size_t i) const {
  if (!is_array() || i >= items_.size()) return null_value();
  return items_[i];
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Value& Value::set(std::string key, Value v) {
  type_ = Type::object;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string Value::get_string(const std::string& key, std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string dump_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;  // shortest exact form wins
  }
  // %g can emit "1e+05" with no decimal point or exponent marker ambiguity
  // for JSON — both are valid JSON numbers, so the form is fine as-is.
  return buf;
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::null:
      out += "null";
      break;
    case Type::boolean:
      out += bool_ ? "true" : "false";
      break;
    case Type::number:
      if (is_int_) {
        out += format("%lld", static_cast<long long>(int_));
      } else {
        out += dump_double(num_);
      }
      break;
    case Type::string:
      out.push_back('"');
      out += escape(str_);
      out.push_back('"');
      break;
    case Type::array: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape(key);
        out += "\":";
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

// Recursive-descent parser over the raw bytes. Positions are tracked for
// error messages; depth is bounded by kMaxDepth.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Value> run() {
    skip_ws();
    Value root;
    if (Status s = parse_value(root, 0); !s) return s.error();
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON document");
    return root;
  }

 private:
  Error fail(const char* what) const {
    return Error{Errc::parse_error,
                 format("json: %s at offset %zu", what, pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.substr(pos_, n) != word) return false;
    pos_ += n;
    return true;
  }

  Status parse_value(Value& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string(out);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out = Value(true);
        return {};
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out = Value(false);
        return {};
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out = Value(nullptr);
        return {};
      default: return parse_number(out);
    }
  }

  Status parse_object(Value& out, std::size_t depth) {
    ++pos_;  // '{'
    out = Value::object();
    skip_ws();
    if (consume('}')) return {};
    while (true) {
      skip_ws();
      Value key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (Status s = parse_string(key); !s) return s;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      Value value;
      if (Status s = parse_value(value, depth + 1); !s) return s;
      out.set(key.as_string(), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return {};
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(Value& out, std::size_t depth) {
    ++pos_;  // '['
    out = Value::array();
    skip_ws();
    if (consume(']')) return {};
    while (true) {
      skip_ws();
      Value item;
      if (Status s = parse_value(item, depth + 1); !s) return s;
      out.push(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return {};
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(Value& out) {
    ++pos_;  // opening quote
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (Status st = parse_hex4(code); !st) return st;
          // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            unsigned low = 0;
            if (Status st = parse_hex4(low); !st) return st;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("invalid low surrogate");
            append_utf8(s, 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00));
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("lone low surrogate");
          } else {
            append_utf8(s, code);
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    out = Value(std::move(s));
    return {};
  }

  Status parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    out = value;
    return {};
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == int_start) return fail("invalid number");
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      return fail("leading zero in number");
    bool integral = true;
    if (consume('.')) {
      integral = false;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac_start) return fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp_start) return fail("digits required in exponent");
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      return fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        out = Value(static_cast<std::int64_t>(v));
        return {};
      }
      // Out-of-range integers degrade to double below.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out = Value(d);
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace mm::json
