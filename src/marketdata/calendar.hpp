// Trading calendar: session times, interval indexing, and business days.
//
// The paper's strategy discretizes the 9:30–16:00 session (23400 seconds)
// into intervals of width ∆s, indexed s = 0..smax-1; e.g. ∆s = 30 s gives
// smax = 780 (§III). Calendar owns that mapping plus a simple Gregorian
// business-day sequence for multi-day experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"

namespace mm::md {

// A calendar date. Only what the experiments need: construction, validity,
// weekday, business-day stepping and ISO formatting.
struct Date {
  int year = 2008;
  int month = 3;  // 1..12
  int day = 3;    // 1..31

  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;

  bool valid() const;
  // 0 = Monday .. 6 = Sunday.
  int weekday() const;
  bool is_weekend() const { return weekday() >= 5; }
  Date next_day() const;
  Date next_business_day() const;
  std::string iso() const;  // "2008-03-03"
};

// Session definition and ∆s interval arithmetic.
class Session {
 public:
  // NYSE regular session: 09:30–16:00.
  static constexpr TimeMs default_open_ms = 9 * ms_per_hour + 30 * ms_per_minute;
  static constexpr TimeMs default_close_ms = 16 * ms_per_hour;

  Session() : Session(default_open_ms, default_close_ms) {}
  Session(TimeMs open_ms, TimeMs close_ms);

  TimeMs open_ms() const { return open_ms_; }
  TimeMs close_ms() const { return close_ms_; }
  TimeMs duration_ms() const { return close_ms_ - open_ms_; }
  std::int64_t duration_seconds() const { return duration_ms() / ms_per_second; }

  bool contains(TimeMs ts) const { return ts >= open_ms_ && ts < close_ms_; }

  // Number of whole ∆s intervals in the session (the paper's smax).
  std::int64_t interval_count(std::int64_t delta_s_seconds) const;

  // Index of the interval containing ts, or -1 if outside the session.
  std::int64_t interval_of(TimeMs ts, std::int64_t delta_s_seconds) const;

  // [start, end) of interval s.
  TimeMs interval_start(std::int64_t s, std::int64_t delta_s_seconds) const;
  TimeMs interval_end(std::int64_t s, std::int64_t delta_s_seconds) const;

 private:
  TimeMs open_ms_;
  TimeMs close_ms_;
};

// `count` consecutive business days starting at `first` (itself rolled
// forward to a business day if needed). Weekends are skipped; the experiments
// use March 2008 which had no NYSE holidays after Mar 21 (Good Friday), which
// we do include in the holiday set for fidelity.
std::vector<Date> business_days(Date first, int count);

// True if `d` is a NYSE holiday covered by our (small) 2008 table.
bool is_holiday(const Date& d);

}  // namespace mm::md
