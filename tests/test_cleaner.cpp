// Tests for the TCP-like quote cleaning filter (§III).
#include <gtest/gtest.h>

#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace mm::md {
namespace {

Quote make_quote(SymbolId sym, double mid, TimeMs ts = 0) {
  Quote q;
  q.ts_ms = ts;
  q.symbol = sym;
  q.bid = mid - 0.01;
  q.ask = mid + 0.01;
  q.bid_size = 1;
  q.ask_size = 1;
  return q;
}

TEST(QuotePlausible, StructuralChecks) {
  Quote q = make_quote(0, 50.0);
  EXPECT_TRUE(q.plausible());
  q.bid = 51.0;  // crossed
  EXPECT_FALSE(q.plausible());
  q = make_quote(0, 50.0);
  q.ask = 0.0;
  EXPECT_FALSE(q.plausible());
  q = make_quote(0, 50.0);
  q.bid_size = -1;
  EXPECT_FALSE(q.plausible());
}

TEST(SymbolFilter, AcceptsStablePrices) {
  SymbolFilter f{CleanerConfig{}};
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(f.accept(make_quote(0, 50.0 + 0.01 * (i % 5))));
}

TEST(SymbolFilter, RejectsFatFinger) {
  CleanerConfig cfg;
  SymbolFilter f{cfg};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.accept(make_quote(0, 50.0 + 0.01 * (i % 3))));
  EXPECT_FALSE(f.accept(make_quote(0, 75.0)));   // +50% print
  EXPECT_FALSE(f.accept(make_quote(0, 5.0)));    // -90% print
  // Estimators must not have been polluted by the rejects.
  EXPECT_TRUE(f.accept(make_quote(0, 50.01)));
}

TEST(SymbolFilter, AdaptsToGradualDrift) {
  SymbolFilter f{CleanerConfig{}};
  double mid = 50.0;
  int rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    mid *= 1.0005;  // strong but gradual trend, ~170% annualized per day
    if (!f.accept(make_quote(0, mid))) ++rejected;
  }
  EXPECT_EQ(rejected, 0);
}

TEST(SymbolFilter, RecoversFromGenuineLevelShift) {
  SymbolFilter f{CleanerConfig{}};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.accept(make_quote(0, 50.0)));
  // The price gaps 10% and STAYS there: a stale filter would reject forever;
  // ours rejects level_shift_ticks-1 quotes, then re-seeds and follows.
  int rejects = 0, accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (f.accept(make_quote(0, 55.0))) ++accepted;
    else ++rejects;
  }
  EXPECT_EQ(rejects, CleanerConfig{}.level_shift_ticks - 1);
  EXPECT_EQ(accepted, 20 - rejects);
  EXPECT_NEAR(f.mean(), 55.0, 0.5);
}

TEST(SymbolFilter, BriefBadBurstStillRejected) {
  // A burst shorter than level_shift_ticks must not poison the estimators.
  SymbolFilter f{CleanerConfig{}};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.accept(make_quote(0, 50.0)));
  for (int i = 0; i < CleanerConfig{}.level_shift_ticks - 1; ++i)
    EXPECT_FALSE(f.accept(make_quote(0, 80.0)));
  // Normal quotes resume: accepted, and the mean never moved.
  EXPECT_TRUE(f.accept(make_quote(0, 50.0)));
  EXPECT_NEAR(f.mean(), 50.0, 0.1);
}

TEST(SymbolFilter, WarmupAcceptsEverything) {
  CleanerConfig cfg;
  cfg.warmup_ticks = 5;
  SymbolFilter f{cfg};
  // Even wild values pass during warmup (estimators still seeding).
  EXPECT_TRUE(f.accept(make_quote(0, 50.0)));
  EXPECT_TRUE(f.accept(make_quote(0, 80.0)));
  EXPECT_TRUE(f.accept(make_quote(0, 20.0)));
}

TEST(SymbolFilter, FatFingeredOpeningTickDoesNotBlindTheFilter) {
  // Regression: the estimators used to be EWMA-seeded from quote #1. A
  // fat-fingered opening print (500 vs a true level of 50) then anchored the
  // mean between the two levels and inflated the deviation so much that a
  // 10x outlier later in the session sat comfortably inside the band. The
  // median/MAD warmup seed starts the live phase centred on the consensus
  // price instead.
  CleanerConfig cfg;
  cfg.warmup_ticks = 8;
  SymbolFilter f{cfg};
  ASSERT_TRUE(f.accept(make_quote(0, 500.0)));  // bad opening print
  for (int i = 1; i < cfg.warmup_ticks; ++i)
    ASSERT_TRUE(f.accept(make_quote(0, 50.0 + 0.05 * (i % 2))));

  // Seeded from the window's median, not dragged toward the bad print.
  EXPECT_NEAR(f.mean(), 50.0, 1.0);
  EXPECT_LT(f.deviation(), 1.0);

  // A genuine outlier right after warmup is rejected...
  EXPECT_FALSE(f.accept(make_quote(0, 490.0)));
  // ...while quotes at the true level keep passing.
  EXPECT_TRUE(f.accept(make_quote(0, 50.05)));
  EXPECT_TRUE(f.accept(make_quote(0, 49.95)));
}

TEST(SymbolFilter, WarmupOutlierDoesNotInflateTheBand) {
  // A single bad tick in the middle of the warmup window must leave the
  // seeded deviation at the scale of normal tick jitter, not at the scale of
  // the outlier's displacement.
  CleanerConfig cfg;
  cfg.warmup_ticks = 8;
  SymbolFilter clean_f{cfg};
  SymbolFilter dirty_f{cfg};
  for (int i = 0; i < cfg.warmup_ticks; ++i) {
    const double mid = 50.0 + 0.05 * (i % 2);
    ASSERT_TRUE(clean_f.accept(make_quote(0, mid)));
    ASSERT_TRUE(dirty_f.accept(make_quote(0, i == 3 ? 500.0 : mid)));
  }
  // The corrupted window seeds (almost) the same estimators as the clean one.
  EXPECT_NEAR(dirty_f.mean(), clean_f.mean(), 0.5);
  EXPECT_LT(dirty_f.deviation(), 10.0 * clean_f.deviation() + 0.1);
}

TEST(QuoteCleaner, DropsStructuralAndBandViolations) {
  QuoteCleaner cleaner(2, CleanerConfig{});
  std::vector<Quote> quotes;
  for (int i = 0; i < 60; ++i) quotes.push_back(make_quote(0, 30.0, i));
  Quote crossed = make_quote(0, 30.0, 61);
  std::swap(crossed.bid, crossed.ask);
  quotes.push_back(crossed);
  quotes.push_back(make_quote(0, 90.0, 62));  // band violation

  const auto survivors = cleaner.clean(quotes);
  EXPECT_EQ(survivors.size(), 60u);
  EXPECT_EQ(cleaner.dropped_structural(), 1u);
  EXPECT_EQ(cleaner.dropped_band(), 1u);
  EXPECT_EQ(cleaner.accepted(), 60u);
}

TEST(QuoteCleaner, PerSymbolIndependence) {
  QuoteCleaner cleaner(2, CleanerConfig{});
  // Symbol 0 trades near $10, symbol 1 near $100 — each filter must track its
  // own level, so $100 quotes for symbol 1 are not outliers.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(cleaner.accept(make_quote(0, 10.0)));
    EXPECT_TRUE(cleaner.accept(make_quote(1, 100.0)));
  }
  EXPECT_FALSE(cleaner.accept(make_quote(0, 100.0)));
  EXPECT_FALSE(cleaner.accept(make_quote(1, 10.0)));
}

TEST(QuoteCleaner, CatchesMostInjectedBadTicks) {
  // End-to-end against the generator: with generous injection the filter
  // should eliminate the clear majority of corrupted quotes while passing
  // nearly all clean ones.
  const auto universe = make_universe(6);
  GeneratorConfig gen;
  gen.quote_rate = 0.3;
  gen.bad_tick_rate = 0.01;
  gen.minor_tick_rate = 0.0;
  const SyntheticDay day(universe, gen, 0);

  QuoteCleaner cleaner(6, CleanerConfig{});
  const auto survivors = cleaner.clean(day.quotes());

  const auto dropped = day.quotes().size() - survivors.size();
  // Drops should be within a factor ~2 of the number of corrupted quotes
  // (some small displacements legitimately pass, some good ticks near a bad
  // stretch get clipped).
  EXPECT_GT(dropped, day.corrupted_count() / 3);
  EXPECT_LT(dropped, day.corrupted_count() * 3);
  // And we should keep the overwhelming majority of all quotes.
  EXPECT_GT(static_cast<double>(survivors.size()),
            0.97 * static_cast<double>(day.quotes().size()));
}

TEST(QuoteCleaner, MinorTicksLargelySurviveTheFilter) {
  // The generator's "minor" displacements are designed to slip through the
  // band filter — they are the residual dirt the robust correlation handles
  // (§III). The filter must NOT catch most of them (if it did, there would
  // be nothing left to distinguish Pearson from Maronna).
  const auto universe = make_universe(4);
  GeneratorConfig gen;
  gen.quote_rate = 0.3;
  gen.bad_tick_rate = 0.0;
  gen.crossed_rate = 0.0;
  gen.minor_tick_rate = 0.02;
  const SyntheticDay day(universe, gen, 0);
  ASSERT_GT(day.corrupted_count(), 100u);

  QuoteCleaner cleaner(4, CleanerConfig{});
  const auto survivors = cleaner.clean(day.quotes());
  const auto dropped = day.quotes().size() - survivors.size();
  EXPECT_LT(dropped, day.corrupted_count() / 2);
}

TEST(QuoteCleaner, DeviationFloorPreventsZeroBand) {
  // A long constant stretch shrinks the EWMA deviation to ~0; the floor must
  // keep normal micro-moves acceptable.
  QuoteCleaner cleaner(1, CleanerConfig{});
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(cleaner.accept(make_quote(0, 40.0)));
  EXPECT_TRUE(cleaner.accept(make_quote(0, 40.02)));
}

}  // namespace
}  // namespace mm::md
