#include "dagflow/graph.hpp"

#include <mutex>
#include <optional>
#include <set>

#include "common/strings.hpp"
#include "dagflow/context.hpp"
#include "mpmini/environment.hpp"

namespace mm::dag {

int Graph::add_node(std::string name, NodeFn fn) {
  MM_ASSERT_MSG(fn != nullptr, "node function must not be null");
  Node node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Graph::add_group_node(std::string name, GroupNodeFn fn, int replicas) {
  MM_ASSERT_MSG(fn != nullptr, "node function must not be null");
  MM_ASSERT_MSG(replicas >= 1, "group node needs at least one replica");
  Node node;
  node.name = std::move(name);
  node.group_fn = std::move(fn);
  node.replicas = replicas;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Graph::rank_count() const {
  int total = 0;
  for (const auto& node : nodes_) total += node.replicas;
  return total;
}

void Graph::connect(int from_node, int from_port, int to_node, int to_port,
                    int capacity) {
  edges_.push_back({from_node, from_port, to_node, to_port, capacity});
}

const std::string& Graph::node_name(int node) const {
  MM_ASSERT(node >= 0 && node < static_cast<int>(nodes_.size()));
  return nodes_[static_cast<std::size_t>(node)].name;
}

Status Graph::validate() const {
  const int n = static_cast<int>(nodes_.size());
  if (n == 0) return Error(Errc::invalid_argument, "graph has no nodes");

  std::set<std::pair<int, int>> seen_inputs, seen_outputs;
  for (const auto& e : edges_) {
    if (e.from_node < 0 || e.from_node >= n || e.to_node < 0 || e.to_node >= n)
      return Error(Errc::invalid_argument, "edge endpoint out of range");
    if (e.from_node == e.to_node)
      return Error(Errc::invalid_argument,
                   "self-loop on node " + nodes_[static_cast<std::size_t>(e.from_node)].name);
    if (e.capacity <= 0) return Error(Errc::invalid_argument, "edge capacity must be positive");
    if (!seen_inputs.insert({e.to_node, e.to_port}).second)
      return Error(Errc::invalid_argument,
                   format("duplicate input port %d on node %s", e.to_port,
                          nodes_[static_cast<std::size_t>(e.to_node)].name.c_str()));
    if (!seen_outputs.insert({e.from_node, e.from_port}).second)
      return Error(Errc::invalid_argument,
                   format("duplicate output port %d on node %s", e.from_port,
                          nodes_[static_cast<std::size_t>(e.from_node)].name.c_str()));
  }

  // Kahn's algorithm for acyclicity.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const auto& e : edges_) ++indegree[static_cast<std::size_t>(e.to_node)];
  std::vector<int> queue;
  for (int i = 0; i < n; ++i)
    if (indegree[static_cast<std::size_t>(i)] == 0) queue.push_back(i);
  int visited = 0;
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    ++visited;
    for (const auto& e : edges_) {
      if (e.from_node != u) continue;
      if (--indegree[static_cast<std::size_t>(e.to_node)] == 0)
        queue.push_back(e.to_node);
    }
  }
  if (visited != n) return Error(Errc::invalid_argument, "graph contains a cycle");
  return {};
}

std::string Graph::to_dot() const {
  std::string out = "digraph dagflow {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    out += format("  n%zu [label=\"%s\"];\n", i, nodes_[i].name.c_str());
  for (const auto& e : edges_) {
    out += format("  n%d -> n%d [label=\"%d->%d cap=%d\"];\n", e.from_node, e.to_node,
                  e.from_port, e.to_port, e.capacity);
  }
  out += "}\n";
  return out;
}

RunResult Graph::run(const RunOptions& options) {
  if (auto st = validate(); !st)
    throw std::runtime_error("dagflow: invalid graph: " + st.error().message);

  // Rank layout: each node occupies a contiguous block of `replicas` ranks;
  // the first rank of the block is the node's leader and owns its edges.
  std::vector<int> node_of_rank;
  std::vector<int> leader_rank(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    leader_rank[i] = static_cast<int>(node_of_rank.size());
    for (int r = 0; r < nodes_[i].replicas; ++r)
      node_of_rank.push_back(static_cast<int>(i));
  }

  RunResult result;
  result.nodes.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) result.nodes[i].name = nodes_[i].name;
  std::mutex status_mutex;

  const auto rank_main = [&](mpi::Comm& comm) {
    const int node = node_of_rank[static_cast<std::size_t>(comm.rank())];
    const Node& spec = nodes_[static_cast<std::size_t>(node)];
    NodeStatus local;           // this rank's observations only
    std::optional<Context> ctx; // leaders only; built after the split

    // Telemetry: this rank's trace ring (pid = rank, tid = node, thread
    // row named after the node) and the node's wall-time histogram.
    obs::TraceRing* ring = nullptr;
    if (options.trace != nullptr) {
      ring = &options.trace->ring(comm.rank(),
                                  format("rank %d", comm.rank()));
      ring->set_tid(node);
      options.trace->set_thread_name(comm.rank(), node, spec.name);
    }
    obs::Histogram* wall =
        options.metrics != nullptr
            ? &options.metrics->histogram("dag." + spec.name + ".wall_ns")
            : nullptr;
    // Causal propagation: this rank thread writes spans to its own ring,
    // and starts from the caller's root context (source nodes send with
    // it; consuming a frame re-points the context at that frame's).
    obs::TraceRingScope ring_scope(ring);
    obs::TraceContextScope context_scope(options.trace_context);

    try {
      // Private group communicator per node (collective over the world).
      mpi::Comm group = comm.split(node, comm.rank());
      const bool leader = comm.rank() == leader_rank[static_cast<std::size_t>(node)];
      if (leader)
        ctx.emplace(comm, node, spec.name, edges_, leader_rank,
                    options.pump_timeout, options.metrics, ring);
      obs::ObsSpan span(ring, "run", wall);
      if (spec.fn) {
        MM_ASSERT(leader);  // single-rank nodes have exactly one member
        spec.fn(*ctx);
      } else {
        spec.group_fn(leader ? &*ctx : nullptr, group);
      }
    } catch (const std::exception& e) {
      local.failed = true;
      local.error = e.what();
    } catch (...) {
      local.failed = true;
      local.error = "unknown exception";
    }

    if (ctx) {
      // Teardown runs even for a failed node: poison (or close) whatever
      // the function left open, then drain remaining input so upstream
      // emitters blocked on credits can always finish. Guarded, because a
      // fault-plan kill makes every transport op throw — downstream then
      // discovers the silence via its pump deadline instead.
      try {
        obs::ObsSpan span(ring, "drain");
        if (local.failed)
          ctx->fail_all_outputs();
        else
          ctx->close_all_outputs();
        while (ctx->recv()) {
        }
      } catch (...) {
      }
      local.upstream_failed = ctx->upstream_failed();
      local.timed_out = ctx->timed_out();
    }

    std::lock_guard<std::mutex> lock(status_mutex);
    NodeStatus& status = result.nodes[static_cast<std::size_t>(node)];
    if (local.failed && !status.failed) {
      status.failed = true;
      status.error = local.error;
    }
    status.upstream_failed = status.upstream_failed || local.upstream_failed;
    status.timed_out = status.timed_out || local.timed_out;
  };

  if (options.rendezvous != nullptr) {
    // One process per rank: run only the local rank here; peer processes run
    // the same graph with their own rendezvous rank.
    mpi::Environment::run_rendezvous(*options.rendezvous, rank_count(), rank_main,
                                     options.fault, options.metrics,
                                     options.heartbeat, options.heartbeat_interval);
  } else {
    mpi::Environment::run(rank_count(), rank_main, options.fault, options.metrics,
                          options.heartbeat, options.heartbeat_interval);
  }

  return result;
}

std::vector<std::string> Graph::rank_node_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(rank_count()));
  for (const auto& node : nodes_) {
    for (int r = 0; r < node.replicas; ++r)
      names.push_back(r == 0 ? node.name : format("%s#%d", node.name.c_str(), r));
  }
  return names;
}

}  // namespace mm::dag
