#include "stats/inference.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/rank_corr.hpp"

namespace mm::stats {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace {

// Lentz's continued fraction for the incomplete beta function.
double beta_cf(double a, double b, double x) {
  constexpr int max_iterations = 300;
  constexpr double eps = 3e-14;
  constexpr double fpmin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= max_iterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::abs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::abs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < eps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  MM_ASSERT_MSG(a > 0.0 && b > 0.0, "incomplete_beta: a, b must be positive");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction on the convergent side.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_cf(a, b, x) / a;
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double nu) {
  MM_ASSERT_MSG(nu > 0.0, "student_t_cdf: nu must be positive");
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

TestResult paired_t_test(const std::vector<double>& x, const std::vector<double>& y) {
  MM_ASSERT_MSG(x.size() == y.size(), "paired_t_test: length mismatch");
  MM_ASSERT_MSG(x.size() >= 2, "paired_t_test needs n >= 2");
  const auto n = x.size();

  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += x[i] - y[i];
  const double mean_diff = sum / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (x[i] - y[i]) - mean_diff;
    ss += d * d;
  }
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));

  TestResult result;
  result.n = n;
  result.effect = mean_diff;
  if (sd <= 0.0) {
    result.statistic = 0.0;
    result.p_value = mean_diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.statistic = mean_diff / (sd / std::sqrt(static_cast<double>(n)));
  const double nu = static_cast<double>(n - 1);
  const double one_sided = 1.0 - student_t_cdf(std::abs(result.statistic), nu);
  result.p_value = std::min(1.0, 2.0 * one_sided);
  return result;
}

TestResult wilcoxon_signed_rank(const std::vector<double>& x,
                                const std::vector<double>& y) {
  MM_ASSERT_MSG(x.size() == y.size(), "wilcoxon: length mismatch");
  std::vector<double> diffs;
  diffs.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    if (d != 0.0) diffs.push_back(d);
  }

  TestResult result;
  result.n = diffs.size();
  if (diffs.size() < 2) {
    result.p_value = 1.0;
    return result;
  }

  // Rank |d| with average ranks for ties.
  std::vector<double> abs_d(diffs.size());
  for (std::size_t i = 0; i < diffs.size(); ++i) abs_d[i] = std::abs(diffs[i]);
  const auto ranks = average_ranks(abs_d.data(), abs_d.size());

  double w_plus = 0.0;
  double median_proxy = 0.0;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i] > 0.0) w_plus += ranks[i];
    median_proxy += diffs[i];
  }
  result.effect = median_proxy / static_cast<double>(diffs.size());

  const auto n = static_cast<double>(diffs.size());
  const double mean_w = n * (n + 1.0) / 4.0;
  // Tie correction on the variance.
  double tie_term = 0.0;
  {
    std::vector<double> sorted = abs_d;
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double var_w = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
  MM_ASSERT(var_w > 0.0);
  // Continuity correction.
  const double num = w_plus - mean_w;
  const double z = (num - (num > 0 ? 0.5 : num < 0 ? -0.5 : 0.0)) / std::sqrt(var_w);
  result.statistic = z;
  result.p_value = std::min(1.0, 2.0 * (1.0 - normal_cdf(std::abs(z))));
  return result;
}

}  // namespace mm::stats
