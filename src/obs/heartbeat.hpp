// mm::obs heartbeats — push-based liveness for mpmini rank threads.
//
// Replaces O(pump-deadline) failure discovery with O(heartbeat-interval)
// detection, following the runtime-attached monitoring model of MPI stream
// pipelines: every rank PUBLISHES a sequence number and a monitor thread
// OBSERVES it. The split keeps the publish side off the hot path:
//
//   * a beat is ONE relaxed store of a pre-incremented local sequence into
//     the rank's cache-line-aligned board slot — no clock read, no RMW, no
//     lock (each slot is single-writer by construction);
//   * the monitor owns every clock read: a rank whose sequence advanced since
//     the last scan is `up`; one that has been silent past the suspect/dead
//     thresholds degrades to `suspect` and then `down`.
//
// Beats are published from the transport's operation hook (every send/recv
// initiation) AND from inside the mailbox's blocking waits, which wake every
// interval to beat — so an idle-but-alive rank (blocked in recv with no
// traffic) keeps beating and is never suspected, while a rank killed by the
// fault plan goes silent and is detected within O(interval). A rank that
// finishes its day cleanly retires its slot, which the monitor reports as
// `done`, never `down`.
//
// With MM_OBS_ENABLED=0 every type here is a field-free no-op: the pulse is
// never armed, the mailbox wait loops collapse to plain condition waits, and
// the monitor reports nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/registry.hpp"  // for the MM_OBS_ENABLED default

#if MM_OBS_ENABLED
#include <condition_variable>
#endif

namespace mm::obs {

// Liveness verdicts, ordered by increasing alarm.
enum class Liveness : std::uint8_t { up, suspect, down, done };
const char* liveness_name(Liveness state);

// One rank's health as maintained by the monitor (cold-side plain data).
struct RankHealth {
  Liveness state = Liveness::up;
  std::uint64_t seq = 0;          // last observed sequence number
  std::int64_t last_seen_ns = 0;  // monitor clock when seq last advanced
  std::int64_t detected_ns = 0;   // monitor clock when `down` was declared
  std::uint32_t missed_scans = 0; // consecutive scans without an advance
};

#if MM_OBS_ENABLED

// Shared heartbeat slots, one cache line per rank. Created by the run harness
// before rank threads start; each slot is written only by its own rank thread
// and read by the monitor.
class HeartbeatBoard {
 public:
  explicit HeartbeatBoard(int ranks);
  int size() const { return ranks_; }

  std::uint64_t seq(int rank) const;
  bool retired(int rank) const;
  void retire(int rank);
  std::atomic<std::uint64_t>* slot(int rank);

  HeartbeatBoard(const HeartbeatBoard&) = delete;
  HeartbeatBoard& operator=(const HeartbeatBoard&) = delete;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> retired{0};
  };
  int ranks_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

// Thread-local publish state. Armed once per rank thread by PulseGuard; the
// transport and mailbox then call beat() through pulse_this_thread() without
// knowing whether heartbeats are on (unarmed beat = one branch).
struct Pulse {
  std::atomic<std::uint64_t>* slot = nullptr;
  std::uint64_t next = 1;
  std::int64_t interval_ns = 0;
  bool dead = false;  // fault-plan kill: beats stop, slot is never retired

  bool armed() const noexcept { return slot != nullptr; }
  std::chrono::nanoseconds interval() const noexcept {
    return std::chrono::nanoseconds{interval_ns};
  }
  // The heartbeat: a single relaxed store (slots are single-writer).
  void beat() noexcept {
    if (slot != nullptr) slot->store(next++, std::memory_order_relaxed);
  }
  // Model a dead rank: no further beats, and PulseGuard::retire() becomes a
  // no-op so the monitor sees silence, not a clean shutdown.
  void mark_dead() noexcept {
    dead = true;
    slot = nullptr;
  }
};

Pulse& pulse_this_thread() noexcept;

// RAII arm/disarm of the calling thread's pulse. The run harness creates one
// per rank thread; retire() is called on clean completion only (a killed
// rank's guard sees the dead mark and leaves the slot unretired).
class PulseGuard {
 public:
  PulseGuard(HeartbeatBoard* board, int rank, std::chrono::nanoseconds interval);
  ~PulseGuard();
  void retire();

  PulseGuard(const PulseGuard&) = delete;
  PulseGuard& operator=(const PulseGuard&) = delete;

 private:
  HeartbeatBoard* board_ = nullptr;
  int rank_ = -1;
};

// The observer side: scans the board and maintains per-rank liveness. scan()
// is public and takes the scan time explicitly, so liveness transitions are
// unit-testable with a synthetic clock; start() runs scans on a background
// thread every `scan_period` of wall time.
class HeartbeatMonitor {
 public:
  struct Config {
    std::chrono::nanoseconds interval{std::chrono::milliseconds{100}};
    double suspect_after = 1.0;  // x interval of silence -> suspect
    double dead_after = 1.5;     // x interval of silence -> down
    std::chrono::nanoseconds scan_period{0};  // 0 = interval / 8
  };

  HeartbeatMonitor(const HeartbeatBoard& board, Config config);
  ~HeartbeatMonitor();

  void start();
  void stop();

  // One scan at time `now_ns` (monitor clock). Thread-safe.
  void scan(std::int64_t now_ns);

  // Block until every rank is `done` or `down` (beats have stopped once the
  // run is over, so this converges within dead_after x interval). Scans are
  // driven by the caller if the background thread is not running. Returns the
  // number of `down` ranks.
  int settle();

  RankHealth health(int rank) const;
  std::vector<RankHealth> all() const;
  std::vector<int> dead_ranks() const;
  const Config& config() const { return config_; }
  std::chrono::nanoseconds scan_period() const;

  // Invoked from within scan() on the transition to `down` (monitor thread
  // when start()ed). Set before start().
  std::function<void(int rank, const RankHealth&)> on_dead;

 private:
  const HeartbeatBoard& board_;
  Config config_;
  mutable std::mutex mutex_;
  std::vector<RankHealth> health_;
  bool seeded_ = false;  // first scan initializes last_seen
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
};

#else  // !MM_OBS_ENABLED — field-free no-ops with the identical API.

class HeartbeatBoard {
 public:
  explicit HeartbeatBoard(int = 0) {}
  int size() const { return 0; }
  std::uint64_t seq(int) const { return 0; }
  bool retired(int) const { return false; }
  void retire(int) {}
};

struct Pulse {
  bool armed() const noexcept { return false; }
  std::chrono::nanoseconds interval() const noexcept { return {}; }
  void beat() noexcept {}
  void mark_dead() noexcept {}
};

inline Pulse& pulse_this_thread() noexcept {
  static Pulse pulse;
  return pulse;
}

class PulseGuard {
 public:
  PulseGuard(HeartbeatBoard*, int, std::chrono::nanoseconds) {}
  void retire() {}
};

class HeartbeatMonitor {
 public:
  struct Config {
    std::chrono::nanoseconds interval{std::chrono::milliseconds{100}};
    double suspect_after = 1.0;
    double dead_after = 1.5;
    std::chrono::nanoseconds scan_period{0};
  };
  HeartbeatMonitor(const HeartbeatBoard&, Config config) : config_(config) {}
  void start() {}
  void stop() {}
  void scan(std::int64_t) {}
  int settle() { return 0; }
  RankHealth health(int) const { return {}; }
  std::vector<RankHealth> all() const { return {}; }
  std::vector<int> dead_ranks() const { return {}; }
  const Config& config() const { return config_; }
  std::chrono::nanoseconds scan_period() const { return config_.interval; }
  std::function<void(int, const RankHealth&)> on_dead;

 private:
  Config config_;
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
