# Empty compiler generated dependencies file for test_walkforward.
# This may be replaced when dependencies are built.
