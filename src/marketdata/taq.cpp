#include "marketdata/taq.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/strings.hpp"

namespace mm::md {
namespace {

constexpr char kCsvHeader[] = "Timestamp,Symbol,BidPrice,AskPrice,BidSize,AskSize";
constexpr char kTradeCsvHeader[] = "Timestamp,Symbol,Price,Size";

// Binary header: magic, version, record count.
struct BinaryHeader {
  char magic[8] = {'M', 'M', 'Q', 'U', 'O', 'T', 'E', 'S'};
  std::uint32_t version = 1;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
};

struct TradeBinaryHeader {
  char magic[8] = {'M', 'M', 'T', 'R', 'A', 'D', 'E', 'S'};
  std::uint32_t version = 1;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
};

}  // namespace

Expected<TimeMs> parse_time_of_day(std::string_view text) {
  const auto t = trim(text);
  // HH:MM:SS or HH:MM:SS.mmm
  if (t.size() < 8 || t[2] != ':' || t[5] != ':')
    return Error(Errc::parse_error, "bad time: " + std::string(t));
  auto digits = [](std::string_view s) -> Expected<int> {
    int v = 0;
    for (char c : s) {
      if (c < '0' || c > '9')
        return Error(Errc::parse_error, "bad time digits: " + std::string(s));
      v = v * 10 + (c - '0');
    }
    return v;
  };
  auto hh = digits(t.substr(0, 2));
  auto mmin = digits(t.substr(3, 2));
  auto ss = digits(t.substr(6, 2));
  if (!hh || !mmin || !ss) return Error(Errc::parse_error, "bad time: " + std::string(t));
  int ms = 0;
  if (t.size() > 8) {
    if (t[8] != '.' || t.size() != 12)
      return Error(Errc::parse_error, "bad time fraction: " + std::string(t));
    auto frac = digits(t.substr(9, 3));
    if (!frac) return frac.error();
    ms = *frac;
  }
  if (*hh > 23 || *mmin > 59 || *ss > 60)
    return Error(Errc::parse_error, "time out of range: " + std::string(t));
  return TimeMs{*hh * ms_per_hour + *mmin * ms_per_minute + *ss * ms_per_second + ms};
}

std::string format_time_of_day(TimeMs ts_ms) {
  const auto h = ts_ms / ms_per_hour;
  const auto m = (ts_ms % ms_per_hour) / ms_per_minute;
  const auto s = (ts_ms % ms_per_minute) / ms_per_second;
  const auto ms = ts_ms % ms_per_second;
  if (ms == 0) return format("%02lld:%02lld:%02lld", static_cast<long long>(h),
                             static_cast<long long>(m), static_cast<long long>(s));
  return format("%02lld:%02lld:%02lld.%03lld", static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
}

std::string format_taq_row(const Quote& quote, const SymbolTable& symbols) {
  return format("%s,%s,%.2f,%.2f,%d,%d", format_time_of_day(quote.ts_ms).c_str(),
                symbols.name(quote.symbol).c_str(), quote.bid, quote.ask,
                quote.bid_size, quote.ask_size);
}

Status write_taq_csv(const std::string& path, const std::vector<Quote>& quotes,
                     const SymbolTable& symbols) {
  std::ofstream out(path);
  if (!out) return Error(Errc::io_error, "cannot open for write: " + path);
  out << kCsvHeader << '\n';
  for (const auto& q : quotes) out << format_taq_row(q, symbols) << '\n';
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: " + path);
  return {};
}

Expected<std::vector<Quote>> read_taq_csv(const std::string& path, SymbolTable& symbols) {
  std::ifstream in(path);
  if (!in) return Error(Errc::io_error, "cannot open: " + path);

  std::vector<Quote> quotes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (line_no == 1 && starts_with(trimmed, "Timestamp")) continue;

    const auto fields = split(trimmed, ',');
    if (fields.size() != 6)
      return Error(Errc::parse_error,
                   format("%s:%zu: expected 6 fields, got %zu", path.c_str(), line_no,
                          fields.size()));
    auto ts = parse_time_of_day(fields[0]);
    auto bid = parse_double(fields[2]);
    auto ask = parse_double(fields[3]);
    auto bid_size = parse_int(fields[4]);
    auto ask_size = parse_int(fields[5]);
    if (!ts) return Error(Errc::parse_error, format("%s:%zu: ", path.c_str(), line_no) + ts.error().message);
    if (!bid || !ask || !bid_size || !ask_size)
      return Error(Errc::parse_error, format("%s:%zu: bad numeric field", path.c_str(), line_no));

    const auto ticker = trim(fields[1]);
    if (ticker.empty())
      return Error(Errc::parse_error, format("%s:%zu: empty symbol", path.c_str(), line_no));

    Quote q;
    q.ts_ms = *ts;
    q.symbol = symbols.intern(std::string(ticker));
    q.bid = *bid;
    q.ask = *ask;
    q.bid_size = static_cast<std::int32_t>(*bid_size);
    q.ask_size = static_cast<std::int32_t>(*ask_size);
    quotes.push_back(q);
  }
  return quotes;
}

Status write_quotes_binary(const std::string& path, const std::vector<Quote>& quotes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(Errc::io_error, "cannot open for write: " + path);
  BinaryHeader header;
  header.count = quotes.size();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(quotes.data()),
            static_cast<std::streamsize>(quotes.size() * sizeof(Quote)));
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: " + path);
  return {};
}

Status write_trades_csv(const std::string& path, const std::vector<Trade>& trades,
                        const SymbolTable& symbols) {
  std::ofstream out(path);
  if (!out) return Error(Errc::io_error, "cannot open for write: " + path);
  out << kTradeCsvHeader << '\n';
  for (const auto& t : trades) {
    out << format("%s,%s,%.2f,%d", format_time_of_day(t.ts_ms).c_str(),
                  symbols.name(t.symbol).c_str(), t.price, t.size)
        << '\n';
  }
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: " + path);
  return {};
}

Expected<std::vector<Trade>> read_trades_csv(const std::string& path,
                                             SymbolTable& symbols) {
  std::ifstream in(path);
  if (!in) return Error(Errc::io_error, "cannot open: " + path);

  std::vector<Trade> trades;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (line_no == 1 && starts_with(trimmed, "Timestamp")) continue;

    const auto fields = split(trimmed, ',');
    if (fields.size() != 4)
      return Error(Errc::parse_error,
                   format("%s:%zu: expected 4 fields, got %zu", path.c_str(), line_no,
                          fields.size()));
    auto ts = parse_time_of_day(fields[0]);
    auto price = parse_double(fields[2]);
    auto size = parse_int(fields[3]);
    if (!ts || !price || !size)
      return Error(Errc::parse_error, format("%s:%zu: bad field", path.c_str(), line_no));

    const auto ticker = trim(fields[1]);
    if (ticker.empty())
      return Error(Errc::parse_error, format("%s:%zu: empty symbol", path.c_str(), line_no));

    Trade t;
    t.ts_ms = *ts;
    t.symbol = symbols.intern(std::string(ticker));
    t.price = *price;
    t.size = static_cast<std::int32_t>(*size);
    trades.push_back(t);
  }
  return trades;
}

Status write_trades_binary(const std::string& path, const std::vector<Trade>& trades) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(Errc::io_error, "cannot open for write: " + path);
  TradeBinaryHeader header;
  header.count = trades.size();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(trades.data()),
            static_cast<std::streamsize>(trades.size() * sizeof(Trade)));
  out.flush();
  if (!out) return Error(Errc::io_error, "write failed: " + path);
  return {};
}

Expected<std::vector<Trade>> read_trades_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(Errc::io_error, "cannot open: " + path);
  TradeBinaryHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, "MMTRADES", 8) != 0)
    return Error(Errc::parse_error, "not a trade file: " + path);
  if (header.version != 1)
    return Error(Errc::parse_error, format("unsupported version %u", header.version));
  std::vector<Trade> trades(header.count);
  in.read(reinterpret_cast<char*>(trades.data()),
          static_cast<std::streamsize>(header.count * sizeof(Trade)));
  if (!in) return Error(Errc::io_error, "truncated trade file: " + path);
  return trades;
}

Expected<std::vector<Quote>> read_quotes_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(Errc::io_error, "cannot open: " + path);
  BinaryHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, "MMQUOTES", 8) != 0)
    return Error(Errc::parse_error, "not a quote file: " + path);
  if (header.version != 1)
    return Error(Errc::parse_error, format("unsupported version %u", header.version));
  std::vector<Quote> quotes(header.count);
  in.read(reinterpret_cast<char*>(quotes.data()),
          static_cast<std::streamsize>(header.count * sizeof(Quote)));
  if (!in) return Error(Errc::io_error, "truncated quote file: " + path);
  return quotes;
}

}  // namespace mm::md
