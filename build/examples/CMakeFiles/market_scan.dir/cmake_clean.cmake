file(REMOVE_RECURSE
  "CMakeFiles/market_scan.dir/market_scan.cpp.o"
  "CMakeFiles/market_scan.dir/market_scan.cpp.o.d"
  "market_scan"
  "market_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
