#include "mpmini/request.hpp"

#include <chrono>
#include <thread>

namespace mm::mpi {

std::size_t wait_any(std::vector<Request>& requests, Message* message) {
  MM_ASSERT_MSG(!requests.empty(), "wait_any on an empty request set");
  int backoff_us = 1;
  while (true) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].valid()) continue;
      if (requests[i].test()) {
        Message msg = requests[i].wait();
        if (message != nullptr) *message = std::move(msg);
        return i;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    if (backoff_us < 256) backoff_us *= 2;
  }
}

}  // namespace mm::mpi
