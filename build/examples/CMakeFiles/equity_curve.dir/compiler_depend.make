# Empty compiler generated dependencies file for equity_curve.
# This may be replaced when dependencies are built.
