// Tests for the parameter-set optimizer (future-work module).
#include <gtest/gtest.h>

#include "core/optimizer.hpp"

namespace mm::core {
namespace {

ExperimentConfig detail_config() {
  ExperimentConfig cfg;
  cfg.symbols = 5;
  cfg.days = 2;
  cfg.generator.quote_rate = 0.2;
  cfg.keep_level_detail = true;
  return cfg;
}

TEST(Objective, ParseAndNames) {
  EXPECT_EQ(*parse_objective("sharpe"), Objective::sharpe);
  EXPECT_EQ(*parse_objective("mean_return"), Objective::mean_return);
  EXPECT_EQ(*parse_objective("drawdown"), Objective::drawdown);
  EXPECT_EQ(*parse_objective("win_loss"), Objective::win_loss);
  EXPECT_FALSE(parse_objective("alpha").has_value());
  EXPECT_STREQ(to_string(Objective::sharpe), "sharpe");
}

TEST(Experiment, LevelDetailPopulatedOnRequest) {
  const auto result = run_experiment(detail_config());
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(result.level_monthly_return_plus1[c].size(), 14u);
    for (const auto& level : result.level_monthly_return_plus1[c])
      EXPECT_EQ(level.size(), result.pair_count);
  }
}

TEST(Experiment, LevelDetailEmptyByDefault) {
  auto cfg = detail_config();
  cfg.keep_level_detail = false;
  const auto result = run_experiment(cfg);
  EXPECT_TRUE(result.level_monthly_return_plus1[0].empty());
}

TEST(Experiment, LevelAverageMatchesAggregatedMeasure) {
  // The paper's per-pair aggregate is the mean over levels; the detail must
  // be consistent with it.
  const auto result = run_experiment(detail_config());
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t p = 0; p < result.pair_count; ++p) {
      double sum = 0.0;
      for (std::size_t l = 0; l < 14; ++l)
        sum += result.level_monthly_return_plus1[c][l][p];
      EXPECT_NEAR(sum / 14.0, result.monthly_return_plus1[c][p], 1e-12);
    }
  }
}

TEST(Experiment, ParallelKeepsLevelDetailIdentical) {
  auto cfg = detail_config();
  const auto serial = run_experiment(cfg);
  cfg.ranks = 3;
  const auto parallel = run_experiment_parallel(cfg);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t l = 0; l < 14; ++l)
      for (std::size_t p = 0; p < serial.pair_count; ++p)
        ASSERT_DOUBLE_EQ(parallel.level_monthly_return_plus1[c][l][p],
                         serial.level_monthly_return_plus1[c][l][p]);
}

TEST(Optimizer, RanksAllLevelsSortedByScore) {
  const auto result = run_experiment(detail_config());
  const ParamGrid grid;
  for (const auto objective : {Objective::sharpe, Objective::mean_return,
                               Objective::drawdown, Objective::win_loss}) {
    const auto ranking = rank_levels(result, grid, objective);
    for (std::size_t c = 0; c < 3; ++c) {
      const auto& ranked = ranking.ranked[c];
      ASSERT_EQ(ranked.size(), 14u);
      for (std::size_t r = 1; r < ranked.size(); ++r)
        EXPECT_GE(ranked[r - 1].score, ranked[r].score);
      // Every level appears exactly once.
      std::vector<bool> seen(14, false);
      for (const auto& s : ranked) {
        EXPECT_FALSE(seen[s.level_index]);
        seen[s.level_index] = true;
      }
    }
  }
}

TEST(Optimizer, ObjectivesScoreCorrectField) {
  const auto result = run_experiment(detail_config());
  const ParamGrid grid;
  const auto by_return = rank_levels(result, grid, Objective::mean_return);
  const auto by_dd = rank_levels(result, grid, Objective::drawdown);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(by_return.ranked[c][0].score,
                     by_return.ranked[c][0].mean_return_plus1);
    // Drawdown objective: the winner has the smallest mean drawdown.
    double min_dd = 1e300;
    for (const auto& s : by_dd.ranked[c]) min_dd = std::min(min_dd, s.mean_drawdown);
    EXPECT_DOUBLE_EQ(by_dd.ranked[c][0].mean_drawdown, min_dd);
  }
}

TEST(Optimizer, ParamsCarryTreatment) {
  const auto result = run_experiment(detail_config());
  const auto ranking = rank_levels(result, ParamGrid(), Objective::sharpe);
  EXPECT_EQ(ranking.ranked[0][0].params.ctype, stats::Ctype::pearson);
  EXPECT_EQ(ranking.ranked[1][0].params.ctype, stats::Ctype::maronna);
  EXPECT_EQ(ranking.ranked[2][0].params.ctype, stats::Ctype::combined);
}

TEST(Optimizer, ReportRendersTopLevels) {
  const auto result = run_experiment(detail_config());
  const auto ranking = rank_levels(result, ParamGrid(), Objective::sharpe);
  const auto text = render_optimizer_report(ranking, 3);
  EXPECT_NE(text.find("sharpe"), std::string::npos);
  EXPECT_NE(text.find("Pearson"), std::string::npos);
  EXPECT_NE(text.find("k'"), std::string::npos);
}

}  // namespace
}  // namespace mm::core
