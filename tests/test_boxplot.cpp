// Tests for Tukey box-plot statistics and the ASCII renderer.
#include <gtest/gtest.h>

#include "stats/boxplot.hpp"

namespace mm::stats {
namespace {

TEST(BoxPlot, NoOutliersInTightSample) {
  const auto b = box_plot({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxPlot, FlagsFarPoints) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(1.0 + 0.1 * i);
  xs.push_back(50.0);   // far above
  xs.push_back(-40.0);  // far below
  const auto b = box_plot(xs);
  ASSERT_EQ(b.outliers.size(), 2u);
  // Whiskers stop at the most extreme non-outlier.
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_NEAR(b.whisker_high, 2.9, 1e-9);
}

TEST(BoxPlot, FenceParameterWidens) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(static_cast<double>(i));
  xs.push_back(40.0);
  EXPECT_EQ(box_plot(xs, 1.5).outliers.size(), 1u);
  EXPECT_TRUE(box_plot(xs, 10.0).outliers.empty());
}

TEST(BoxPlot, SinglePoint) {
  const auto b = box_plot({3.0});
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 3.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(RenderAscii, MarksInExpectedPositions) {
  BoxPlot b;
  b.q1 = 0.25;
  b.median = 0.5;
  b.q3 = 0.75;
  b.whisker_low = 0.0;
  b.whisker_high = 1.0;
  const auto line = render_ascii(b, 0.0, 1.0, 41);
  EXPECT_EQ(line.size(), 41u);
  EXPECT_EQ(line[0], '|');
  EXPECT_EQ(line[40], '|');
  EXPECT_EQ(line[10], '[');
  EXPECT_EQ(line[20], '#');
  EXPECT_EQ(line[30], ']');
}

TEST(RenderAscii, OutliersRenderedAsStars) {
  BoxPlot b;
  b.q1 = 0.4;
  b.median = 0.45;
  b.q3 = 0.5;
  b.whisker_low = 0.35;
  b.whisker_high = 0.55;
  b.outliers = {0.95};
  const auto line = render_ascii(b, 0.0, 1.0, 41);
  EXPECT_EQ(line[38], '*');
}

TEST(RenderAscii, ClampsOutOfAxisValues) {
  BoxPlot b;
  b.q1 = -2.0;
  b.median = 0.5;
  b.q3 = 3.0;
  b.whisker_low = -5.0;
  b.whisker_high = 9.0;
  const auto line = render_ascii(b, 0.0, 1.0, 20);
  EXPECT_EQ(line.size(), 20u);  // no crash, everything clamped
}

}  // namespace
}  // namespace mm::stats
