// Walk-forward evaluation — the §VI parameter-identification program done
// without look-ahead bias: select the best factor level on a formation block
// of days, then evaluate it out-of-sample on the following block, rolling
// forward through the month. The gap between in-sample and out-of-sample
// scores is the overfitting penalty a practitioner actually pays.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/optimizer.hpp"

namespace mm::core {

struct WalkForwardConfig {
  ExperimentConfig experiment{};
  // Days in each selection block (out-of-sample block is the same length).
  int formation_days = 3;
  Objective objective = Objective::sharpe;
};

struct WalkForwardFold {
  int formation_first_day = 0;  // day indexes into the experiment's days
  int evaluation_first_day = 0;
  // Per treatment: level chosen on the formation block and its scores.
  std::array<std::size_t, 3> chosen_level{};
  std::array<double, 3> in_sample_score{};
  std::array<double, 3> out_of_sample_score{};
};

struct WalkForwardResult {
  std::vector<WalkForwardFold> folds;
  // Mean out-of-sample score of the walk-forward-chosen level, vs the score
  // of (a) the in-sample-best level evaluated in-sample (the overfit view)
  // and (b) the single best fixed level in hindsight.
  std::array<double, 3> mean_out_of_sample{};
  std::array<double, 3> mean_in_sample{};
};

// Runs one experiment per day (keeping per-level detail) and rolls the
// selection forward. config.experiment.days must be >= 2 * formation_days.
WalkForwardResult walk_forward(const WalkForwardConfig& config);

std::string render_walk_forward(const WalkForwardResult& result,
                                const WalkForwardConfig& config);

}  // namespace mm::core
