file(REMOVE_RECURSE
  "libmm_dagflow.a"
)
