file(REMOVE_RECURSE
  "libmm_stats.a"
)
