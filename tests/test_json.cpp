// mm::json — the tree's single JSON parse/serialize implementation.
//
// The tests lean on round-trips: a value that travels Value -> dump() ->
// parse() must come back structurally identical, and doubles must come back
// BIT-identical (dump_double emits the shortest string that reparses to the
// same bits — that is what lets svc job specs travel over HTTP without
// perturbing backtest results).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hpp"

namespace mm::json {
namespace {

Value must_parse(const std::string& text) {
  Expected<Value> parsed = parse(text);
  EXPECT_TRUE(parsed.has_value()) << text << " -> " << parsed.error().message;
  return parsed.has_value() ? std::move(parsed.value()) : Value{};
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("line\nfeed\ttab\rret"), "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(escape("\b\f"), "\\b\\f");
}

TEST(JsonEscape, EscapedStringsReparseByteForByte) {
  const std::string hostile = "q\"b\\n\nt\tc\x01 end";
  const Value v = must_parse("\"" + escape(hostile) + "\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), hostile);
}

TEST(JsonDumpDouble, ShortestFormRoundTripsBitIdentically) {
  for (const double d : {0.1, 1.0 / 3.0, 2.5, -0.0007, 1e300, 5e-324,
                         3.141592653589793, 123456789.123456789}) {
    const std::string text = dump_double(d);
    const Value v = must_parse(text);
    ASSERT_TRUE(v.is_number());
    const double back = v.as_double();
    std::uint64_t d_bits = 0, back_bits = 0;
    std::memcpy(&d_bits, &d, sizeof(d_bits));
    std::memcpy(&back_bits, &back, sizeof(back_bits));
    EXPECT_EQ(d_bits, back_bits) << text;
  }
  EXPECT_EQ(dump_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(dump_double(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonParse, ScalarsAndTypePredicates) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_TRUE(must_parse("true").as_bool());
  EXPECT_FALSE(must_parse("false").as_bool(true));
  const Value i = must_parse("-42");
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), -42);
  const Value d = must_parse("2.75");
  EXPECT_TRUE(d.is_number());
  EXPECT_FALSE(d.is_int());
  EXPECT_DOUBLE_EQ(d.as_double(), 2.75);
  EXPECT_EQ(must_parse("\"s\"").as_string(), "s");
  // Exponent forms are numbers even when integral-looking.
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_double(), 1000.0);
}

TEST(JsonParse, UnicodeEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(must_parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(must_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");        // é
  EXPECT_EQ(must_parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");    // €
  EXPECT_EQ(must_parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "01", "1.2.3",
        "{\"a\":1,}", "[1 2]", "nul", "\"bad\\q\"", "\"\\ud83d\"", "{1:2}"}) {
    EXPECT_FALSE(parse(bad).has_value()) << "accepted: " << bad;
  }
  // Trailing garbage after a complete document is an error.
  EXPECT_FALSE(parse("{} trailing").has_value());
  EXPECT_FALSE(parse("1}").has_value());
  // But trailing whitespace is fine.
  EXPECT_TRUE(parse("  {\"a\": 1}  \n").has_value());
}

TEST(JsonParse, DepthCapStopsHostileNesting) {
  std::string deep;
  for (std::size_t i = 0; i < kMaxDepth + 8; ++i) deep += "[";
  EXPECT_FALSE(parse(deep).has_value());
  std::string ok;
  for (std::size_t i = 0; i < 8; ++i) ok += "[";
  for (std::size_t i = 0; i < 8; ++i) ok += "]";
  EXPECT_TRUE(parse(ok).has_value());
}

TEST(JsonValue, ObjectsPreserveInsertionOrderAndAssignInPlace) {
  Value obj = Value::object();
  obj.set("zulu", 1);
  obj.set("alpha", 2);
  obj.set("mike", 3);
  obj.set("zulu", 9);  // assign must not move the key to the back
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "zulu");
  EXPECT_EQ(obj.members()[1].first, "alpha");
  EXPECT_EQ(obj.members()[2].first, "mike");
  EXPECT_EQ(obj.get_int("zulu", -1), 9);
  EXPECT_EQ(obj.dump(), "{\"zulu\":9,\"alpha\":2,\"mike\":3}");
}

TEST(JsonValue, TypedLookupsFallBackOnMissingOrMistyped) {
  Value obj = Value::object();
  obj.set("n", 7);
  obj.set("d", 1.5);
  obj.set("s", "text");
  obj.set("b", true);
  EXPECT_EQ(obj.get_int("n", -1), 7);
  EXPECT_DOUBLE_EQ(obj.get_double("d", -1.0), 1.5);
  EXPECT_EQ(obj.get_string("s", "fb"), "text");
  EXPECT_TRUE(obj.get_bool("b", false));
  EXPECT_EQ(obj.get_int("missing", -1), -1);
  EXPECT_EQ(obj.get_int("s", -1), -1);  // mistyped -> fallback
  EXPECT_EQ(obj.get_string("n", "fb"), "fb");
  EXPECT_EQ(obj.find("missing"), nullptr);
  // at() past the end returns the null sentinel, not UB.
  Value arr = Value::array();
  arr.push(1);
  EXPECT_TRUE(arr.at(5).is_null());
}

TEST(JsonRoundTrip, NestedDocumentSurvivesDumpAndReparse) {
  Value spec = Value::object();
  spec.set("tenant", "alice");
  spec.set("date", 20070103);
  spec.set("days", 2);
  Value params = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value p = Value::object();
    p.set("divergence", 0.0005 * (i + 1));
    p.set("window", std::int64_t{390});
    p.set("ctype", i == 0 ? "pearson" : "maronna");
    p.set("active", i % 2 == 0);
    params.push(std::move(p));
  }
  spec.set("paramsets", std::move(params));
  spec.set("note", "quotes \" and \\ and \n survive");

  const std::string text = spec.dump();
  const Value back = must_parse(text);
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.get_string("tenant", ""), "alice");
  EXPECT_EQ(back.get_int("date", 0), 20070103);
  const Value* ps = back.find("paramsets");
  ASSERT_NE(ps, nullptr);
  ASSERT_EQ(ps->size(), 3u);
  EXPECT_EQ(ps->at(0).get_string("ctype", ""), "pearson");
  EXPECT_DOUBLE_EQ(ps->at(2).get_double("divergence", 0.0), 0.0015);
  EXPECT_TRUE(ps->at(0).get_bool("active", false));
  EXPECT_FALSE(ps->at(1).get_bool("active", true));
  EXPECT_EQ(back.get_string("note", ""), "quotes \" and \\ and \n survive");
  // Serialization is deterministic: a second trip emits the same bytes.
  EXPECT_EQ(must_parse(text).dump(), text);
}

TEST(JsonRoundTrip, Int64ExtremesKeepExactness) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const std::int64_t small = std::numeric_limits<std::int64_t>::min();
  Value obj = Value::object();
  obj.set("hi", big);
  obj.set("lo", small);
  const Value back = must_parse(obj.dump());
  EXPECT_EQ(back.get_int("hi", 0), big);
  EXPECT_EQ(back.get_int("lo", 0), small);
  EXPECT_TRUE(back.find("hi")->is_int());
}

}  // namespace
}  // namespace mm::json
