// Tests for the trade-print substrate: generation, trade-based OHLC bars,
// file formats and tickdb storage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "marketdata/bars.hpp"
#include "marketdata/generator.hpp"
#include "marketdata/taq.hpp"
#include "marketdata/tickdb.hpp"

namespace mm::md {
namespace {

GeneratorConfig trade_config() {
  GeneratorConfig cfg;
  cfg.quote_rate = 0.1;
  cfg.trade_rate = 0.1;
  return cfg;
}

TEST(TradeGeneration, VolumeMatchesRate) {
  const auto universe = make_universe(4);
  const SyntheticDay day(universe, trade_config(), 0);
  const double expected = 4 * 23400 * 0.1;
  EXPECT_NEAR(static_cast<double>(day.trades().size()), expected, expected * 0.1);
}

TEST(TradeGeneration, SortedInSessionRoundLots) {
  const auto universe = make_universe(3);
  const SyntheticDay day(universe, trade_config(), 1);
  const Session session;
  TimeMs prev = 0;
  for (const auto& t : day.trades()) {
    EXPECT_GE(t.ts_ms, prev);
    prev = t.ts_ms;
    EXPECT_TRUE(session.contains(t.ts_ms));
    EXPECT_GT(t.price, 0.0);
    EXPECT_GT(t.size, 0);
    EXPECT_EQ(t.size % 100, 0);  // round lots
  }
}

TEST(TradeGeneration, PricesNearTruePath) {
  const auto universe = make_universe(3);
  const SyntheticDay day(universe, trade_config(), 0);
  const Session session;
  for (const auto& t : day.trades()) {
    const auto sec = static_cast<std::size_t>((t.ts_ms - session.open_ms()) / 1000);
    const double truth = day.true_path(t.symbol)[sec];
    EXPECT_NEAR(t.price, truth, truth * 0.01);
  }
}

TEST(TradeGeneration, DisabledByZeroRate) {
  const auto universe = make_universe(2);
  GeneratorConfig cfg = trade_config();
  cfg.trade_rate = 0.0;
  const SyntheticDay day(universe, cfg, 0);
  EXPECT_TRUE(day.trades().empty());
}

TEST(TradeGeneration, QuotesUnaffectedByTradeRate) {
  // Determinism guard: adding/removing the trade stream must not change the
  // quote stream (quotes are drawn first from the rng).
  const auto universe = make_universe(3);
  GeneratorConfig with = trade_config();
  GeneratorConfig without = trade_config();
  without.trade_rate = 0.0;
  const SyntheticDay a(universe, with, 0);
  const SyntheticDay b(universe, without, 0);
  ASSERT_EQ(a.quotes().size(), b.quotes().size());
  for (std::size_t k = 0; k < a.quotes().size(); k += 97)
    EXPECT_DOUBLE_EQ(a.quotes()[k].bid, b.quotes()[k].bid);
}

TEST(TradeBars, OhlcAndVolume) {
  const Session session;
  const TimeMs open = session.open_ms();
  TradeBarAccumulator acc(1, session, 30);
  const auto trade_at = [](TimeMs ts, double price, std::int32_t size) {
    Trade t;
    t.ts_ms = ts;
    t.symbol = 0;
    t.price = price;
    t.size = size;
    return t;
  };
  EXPECT_FALSE(acc.observe(trade_at(open + 1000, 10.0, 100)).has_value());
  EXPECT_FALSE(acc.observe(trade_at(open + 5000, 12.0, 200)).has_value());
  EXPECT_FALSE(acc.observe(trade_at(open + 9000, 9.0, 300)).has_value());

  const auto bar = acc.observe(trade_at(open + 31'000, 11.0, 100));
  ASSERT_TRUE(bar.has_value());
  EXPECT_DOUBLE_EQ(bar->open, 10.0);
  EXPECT_DOUBLE_EQ(bar->high, 12.0);
  EXPECT_DOUBLE_EQ(bar->low, 9.0);
  EXPECT_DOUBLE_EQ(bar->close, 9.0);
  EXPECT_EQ(bar->volume, 600);
  EXPECT_EQ(bar->tick_count, 3);

  const auto rest = acc.flush();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].volume, 100);
}

TEST(TradeBars, BarVolumeConservation) {
  // Total volume across all bars equals total traded volume.
  const auto universe = make_universe(3);
  const SyntheticDay day(universe, trade_config(), 2);
  const Session session;
  TradeBarAccumulator acc(3, session, 60);
  std::int64_t bar_volume = 0;
  for (const auto& t : day.trades()) {
    if (const auto bar = acc.observe(t)) bar_volume += bar->volume;
  }
  for (const auto& bar : acc.flush()) bar_volume += bar.volume;
  std::int64_t traded = 0;
  for (const auto& t : day.trades()) traded += t.size;
  EXPECT_EQ(bar_volume, traded);
}

class TradeFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_trades_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(TradeFiles, CsvRoundTrip) {
  const auto universe = make_universe(3);
  GeneratorConfig cfg = trade_config();
  cfg.trade_rate = 0.02;
  const SyntheticDay day(universe, cfg, 0);
  ASSERT_TRUE(write_trades_csv(path("t.csv"), day.trades(), universe.table).has_value());

  SymbolTable symbols;
  auto read = read_trades_csv(path("t.csv"), symbols);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), day.trades().size());
  for (std::size_t k = 0; k < read->size(); k += 13) {
    EXPECT_EQ((*read)[k].ts_ms, day.trades()[k].ts_ms);
    EXPECT_NEAR((*read)[k].price, day.trades()[k].price, 0.005);
    EXPECT_EQ((*read)[k].size, day.trades()[k].size);
  }
}

TEST_F(TradeFiles, BinaryRoundTripExact) {
  const auto universe = make_universe(2);
  GeneratorConfig cfg = trade_config();
  cfg.trade_rate = 0.02;
  const SyntheticDay day(universe, cfg, 1);
  ASSERT_TRUE(write_trades_binary(path("t.bin"), day.trades()).has_value());
  auto read = read_trades_binary(path("t.bin"));
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), day.trades().size());
  for (std::size_t k = 0; k < read->size(); ++k)
    EXPECT_DOUBLE_EQ((*read)[k].price, day.trades()[k].price);
}

TEST_F(TradeFiles, BinaryRejectsQuoteFile) {
  // A quotes file must not parse as trades (distinct magic).
  ASSERT_TRUE(write_quotes_binary(path("q.bin"), {}).has_value());
  EXPECT_FALSE(read_trades_binary(path("q.bin")).has_value());
}

TEST_F(TradeFiles, TickDbTradesRoundTrip) {
  auto db = TickDb::open(path("db"));
  ASSERT_TRUE(db.has_value());
  const auto universe = make_universe(2);
  GeneratorConfig cfg = trade_config();
  cfg.trade_rate = 0.02;
  const SyntheticDay day(universe, cfg, 0);
  const Date date{2008, 3, 3};
  EXPECT_FALSE(db->has_trades(date));
  ASSERT_TRUE(db->write_trades(date, day.trades()).has_value());
  EXPECT_TRUE(db->has_trades(date));
  auto read = db->read_trades(date);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->size(), day.trades().size());
}

}  // namespace
}  // namespace mm::md
