#include "wire/quote_source.hpp"

#include <random>

#include "common/strings.hpp"

namespace mm::wire {

Expected<std::unique_ptr<WireQuoteSource>> WireQuoteSource::connect(
    const std::string& host, std::uint16_t port, const std::string& key,
    std::chrono::milliseconds connect_timeout) {
  auto sock = tcp_connect(host, port, connect_timeout);
  if (!sock) return sock.error();

  std::unique_ptr<WireQuoteSource> src(new WireQuoteSource());
  src->sock_ = std::move(*sock);
  // Session ids only need to be distinct across concurrent subscribers for
  // log correlation; a random draw is plenty.
  src->session_ = std::random_device{}();

  FrameWriter writer;
  writer.hello(src->session_, key);
  if (auto sent = send_all(src->sock_, writer.bytes().data(), writer.size()); !sent)
    return sent.error();
  return src;
}

std::optional<md::Quote> WireQuoteSource::next() {
  while (!done_) {
    // Drain the parser before touching the socket again.
    FrameView v;
    while (parser_.next(&v)) {
      ++stats_.frames;
      switch (v.type) {
        case MsgType::quote: {
          md::Quote q;
          if (!decode_quote(v, &q)) {
            ++stats_.parse_errors;
            fail("malformed quote frame");
            return std::nullopt;
          }
          ++stats_.quotes;
          return q;
        }
        case MsgType::heartbeat:
          ++stats_.heartbeats;
          break;
        case MsgType::hello:
          // Server's subscription echo; nothing to do but note it arrived.
          break;
        case MsgType::end_of_day: {
          (void)decode_end_of_day(v, &announced_count_);
          done_ = true;
          if (announced_count_ != stats_.quotes)
            fail(format("end_of_day announced %llu quotes but %llu arrived",
                        static_cast<unsigned long long>(announced_count_),
                        static_cast<unsigned long long>(stats_.quotes)));
          return std::nullopt;
        }
      }
    }
    if (parser_.failed()) {
      ++stats_.parse_errors;
      fail("corrupt stream: " + parser_.error());
      return std::nullopt;
    }
    auto n = recv_some(sock_, rx_.data(), rx_.size());
    if (!n) {
      fail(n.error().to_string());
      return std::nullopt;
    }
    if (*n == 0) {
      // EOF before end_of_day: the server dropped us mid-day.
      fail("connection closed before end_of_day");
      return std::nullopt;
    }
    parser_.feed(rx_.data(), *n);
  }
  return std::nullopt;
}

Expected<std::vector<md::Quote>> fetch_day(const std::string& host,
                                           std::uint16_t port,
                                           const std::string& key,
                                           std::chrono::milliseconds connect_timeout) {
  auto src = WireQuoteSource::connect(host, port, key, connect_timeout);
  if (!src) return src.error();
  std::vector<md::Quote> day;
  while (auto q = (*src)->next()) day.push_back(*q);
  if ((*src)->failed())
    return Error(Errc::io_error, "wire fetch_day('" + key + "'): " + (*src)->error());
  return day;
}

}  // namespace mm::wire
