// Internal wiring between the simd dispatch TU and the per-level kernel TUs.
// Not part of the stats API — include simd.hpp instead.
#pragma once

#include "stats/simd.hpp"

namespace mm::stats::simd::detail {

// Defined in simd_scalar.cpp (always) and simd_avx2.cpp (when MM_SIMD_AVX2).
const KernelTable& scalar_table();
#if MM_SIMD_AVX2
const KernelTable& avx2_table();
#endif

}  // namespace mm::stats::simd::detail
