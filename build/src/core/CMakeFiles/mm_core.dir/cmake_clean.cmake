file(REMOVE_RECURSE
  "CMakeFiles/mm_core.dir/backtester.cpp.o"
  "CMakeFiles/mm_core.dir/backtester.cpp.o.d"
  "CMakeFiles/mm_core.dir/distance.cpp.o"
  "CMakeFiles/mm_core.dir/distance.cpp.o.d"
  "CMakeFiles/mm_core.dir/experiment.cpp.o"
  "CMakeFiles/mm_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mm_core.dir/metrics.cpp.o"
  "CMakeFiles/mm_core.dir/metrics.cpp.o.d"
  "CMakeFiles/mm_core.dir/optimizer.cpp.o"
  "CMakeFiles/mm_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/mm_core.dir/params.cpp.o"
  "CMakeFiles/mm_core.dir/params.cpp.o.d"
  "CMakeFiles/mm_core.dir/portfolio.cpp.o"
  "CMakeFiles/mm_core.dir/portfolio.cpp.o.d"
  "CMakeFiles/mm_core.dir/report.cpp.o"
  "CMakeFiles/mm_core.dir/report.cpp.o.d"
  "CMakeFiles/mm_core.dir/significance.cpp.o"
  "CMakeFiles/mm_core.dir/significance.cpp.o.d"
  "CMakeFiles/mm_core.dir/strategy.cpp.o"
  "CMakeFiles/mm_core.dir/strategy.cpp.o.d"
  "CMakeFiles/mm_core.dir/walkforward.cpp.o"
  "CMakeFiles/mm_core.dir/walkforward.cpp.o.d"
  "libmm_core.a"
  "libmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
