// Thread-per-rank launcher for mpmini programs.
//
// Environment::run(n, fn) plays the role of mpirun: it creates an n-rank
// world, starts one thread per rank, hands each a world communicator, and
// joins. A rank that throws poisons the run; the first exception is rethrown
// to the caller after all ranks have finished.
#pragma once

#include <functional>

#include "mpmini/comm.hpp"
#include "mpmini/fault.hpp"
#include "obs/registry.hpp"

namespace mm::mpi {

class Environment {
 public:
  // Runs `rank_main` on `world_size` ranks and blocks until all complete.
  static void run(int world_size, const std::function<void(Comm&)>& rank_main);

  // Same, with a fault plan installed on the world before any rank starts.
  // A rank killed by the plan surfaces as a rethrown RankKilled (first error
  // wins) once every rank has finished — callers that inject kills must make
  // the surviving ranks deadline-aware or they will wait on the dead rank
  // forever.
  //
  // With a non-null `metrics` registry the world records transport telemetry
  // into it (see WorldObs); the registry must outlive the run.
  static void run(int world_size, const std::function<void(Comm&)>& rank_main,
                  const FaultPlan& fault, obs::Registry* metrics = nullptr);
};

}  // namespace mm::mpi
