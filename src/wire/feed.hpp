// Feed publishers and receivers for the mmq wire format.
//
// TcpFeedServer is the reliable path: a client connects, sends a hello whose
// key names a day (a md::DayCache key), and the server streams that day's
// quotes back as frames, closing with end_of_day. One connection is served at
// a time — like the repo's MetricsServer this is loopback/LAN operator
// plumbing, not an internet-facing daemon.
//
// UdpPublisher / UdpReceiver are the lossy path: a day is blasted as
// sequence-numbered datagrams (several quote frames each); the receiver
// dedups and detects loss at datagram granularity with a SequenceTracker and
// reports the damage in FeedStats. Delivery semantics are UDP's: duplicates
// and reorderings are repaired, gaps are counted, not re-fetched.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "marketdata/types.hpp"
#include "wire/parser.hpp"
#include "wire/socket.hpp"

namespace mm::wire {

struct FeedStats {
  std::uint64_t datagrams = 0;
  std::uint64_t frames = 0;
  std::uint64_t quotes = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t stale_datagrams = 0;  // duplicates + late reordered arrivals
  std::uint64_t gaps = 0;
  std::uint64_t gap_messages = 0;
  std::uint64_t parse_errors = 0;
};

// Resolves a hello key to a day of quotes (same shape as md::DayCache's
// loader, so one lambda can serve both).
using DayResolver =
    std::function<Expected<std::vector<md::Quote>>(const std::string& key)>;

struct TcpFeedConfig {
  std::string host = "127.0.0.1";
  // A heartbeat frame is interleaved every `heartbeat_every` quotes so long
  // days keep the connection visibly alive.
  std::uint64_t heartbeat_every = 4096;
};

class TcpFeedServer {
 public:
  explicit TcpFeedServer(DayResolver resolver, TcpFeedConfig config = {});
  ~TcpFeedServer();

  // Bind (port 0 picks an ephemeral port) and start the accept loop.
  Status start(std::uint16_t port = 0);
  void stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t sessions_served() const { return sessions_.load(); }

  TcpFeedServer(const TcpFeedServer&) = delete;
  TcpFeedServer& operator=(const TcpFeedServer&) = delete;

 private:
  void accept_loop();
  void serve(Socket conn);

  DayResolver resolver_;
  TcpFeedConfig config_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sessions_{0};
};

struct UdpPublisherConfig {
  // Frames per datagram: 32 quotes ≈ 1.3 KB, comfortably under loopback and
  // LAN MTUs once the 24-byte header is added.
  std::size_t quotes_per_datagram = 32;
};

class UdpPublisher {
 public:
  UdpPublisher(std::string host, std::uint16_t port, UdpPublisherConfig config = {});

  // Send one day as sequenced datagrams; the final datagram carries the
  // end_of_day frame (counted in the same sequence space).
  Status publish_day(std::uint64_t session, const std::vector<md::Quote>& day);

  std::uint64_t datagrams_sent() const { return datagrams_sent_; }

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  UdpPublisherConfig config_;
  std::uint64_t datagrams_sent_ = 0;
};

class UdpReceiver {
 public:
  // Bind the receive socket (port 0 picks an ephemeral port).
  Status bind(const std::string& host = "127.0.0.1", std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }

  // Collect one day: blocks until an in-sequence end_of_day frame arrives or
  // `idle_timeout` passes with no datagram. Duplicated and reordered
  // datagrams are absorbed; gap damage is reported in stats(), and quotes
  // lost to gaps are simply missing from the result.
  Expected<std::vector<md::Quote>> receive_day(
      std::chrono::milliseconds idle_timeout = std::chrono::milliseconds{2000});

  const FeedStats& stats() const { return stats_; }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
  FeedStats stats_{};
};

}  // namespace mm::wire
