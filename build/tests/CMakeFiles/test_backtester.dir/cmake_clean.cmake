file(REMOVE_RECURSE
  "CMakeFiles/test_backtester.dir/test_backtester.cpp.o"
  "CMakeFiles/test_backtester.dir/test_backtester.cpp.o.d"
  "test_backtester"
  "test_backtester.pdb"
  "test_backtester[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backtester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
