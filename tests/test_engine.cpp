// Integration tests for the Fig. 1 pipeline: stream a synthetic day through
// collector -> cleaner -> snapshot -> correlation -> strategies -> master and
// check the master's books against the direct (non-streaming) backtest path.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <unistd.h>

#include "core/backtester.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/tickdb.hpp"

namespace mm::engine {
namespace {

struct Scenario {
  md::Universe universe;
  std::vector<md::Quote> quotes;
};

Scenario make_scenario(std::size_t symbols, int day) {
  Scenario s{md::make_universe(symbols), {}};
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.15;
  const md::SyntheticDay synth(s.universe, cfg, day);
  s.quotes = synth.quotes();
  return s;
}

core::StrategyParams pipeline_params(stats::Ctype ctype) {
  core::StrategyParams p = core::ParamGrid::base();
  p.ctype = ctype;
  p.divergence = 0.0005;
  return p;
}

TEST(Pipeline, RunsEndToEndAndBalancesBooks) {
  auto scenario = make_scenario(6, 0);
  PipelineConfig cfg;
  cfg.symbols = 6;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson),
                    pipeline_params(stats::Ctype::maronna),
                    pipeline_params(stats::Ctype::combined)};

  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);

  // Orders: one entry and one exit per trade.
  EXPECT_EQ(result.master.entries, result.master.trades);
  EXPECT_EQ(result.master.exits, result.master.trades);
  EXPECT_EQ(result.master.orders, result.master.entries + result.master.exits);
  EXPECT_GT(result.master.trades, 0u);
  EXPECT_EQ(result.master.trade_returns.size(), result.master.trades);

  // Every position was flattened: net shares per symbol are zero.
  for (const auto& [symbol, net] : result.master.net_shares)
    EXPECT_NEAR(net, 0.0, 1e-9) << "symbol " << symbol;

  EXPECT_GT(result.quotes_per_second, 0.0);
  EXPECT_EQ(result.quotes_in, scenario.quotes.size());
}

TEST(Pipeline, StageThroughputAccounting) {
  auto scenario = make_scenario(4, 1);
  PipelineConfig cfg;
  cfg.symbols = 4;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson)};
  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);

  ASSERT_GE(result.stages.size(), 6u);
  const auto& collector = result.stages[0];
  const auto& cleaner = result.stages[1];
  const auto& snapshot = result.stages[2];
  const auto& correlation = result.stages[3];

  EXPECT_EQ(collector.items_out, scenario.quotes.size());
  EXPECT_EQ(cleaner.items_in, scenario.quotes.size());
  EXPECT_LE(cleaner.items_out, cleaner.items_in);  // cleaning drops some
  EXPECT_GT(cleaner.items_out, cleaner.items_in * 9 / 10);
  // One snapshot per interval (delta_s = 30 -> 780), one frame out per
  // snapshot in.
  EXPECT_EQ(snapshot.items_out, 780u);
  EXPECT_EQ(correlation.items_in, 780u);
  EXPECT_EQ(correlation.items_out, 780u);
}

TEST(Pipeline, MatchesDirectBacktestExactly) {
  // The streaming pipeline and the direct (Approach 3) path see the same
  // cleaned data and must produce identical trade counts and total pnl.
  auto scenario = make_scenario(5, 2);
  const auto params = pipeline_params(stats::Ctype::pearson);

  PipelineConfig cfg;
  cfg.symbols = 5;
  cfg.strategies = {params};
  const auto streamed = run_pipeline(cfg, scenario.universe, scenario.quotes);

  // Direct path: same cleaning, same sampling (with base-price seeding as the
  // snapshot stage does), same strategy.
  md::QuoteCleaner cleaner(5, cfg.cleaner);
  const auto cleaned = cleaner.clean(scenario.quotes);
  const md::Session session;
  auto bam = md::sample_bam_series(cleaned, 5, session, params.delta_s);
  // sample_bam_series backfills from the first quote; the pipeline seeds from
  // base_price. Replicate the pipeline's seeding for a like-for-like check.
  {
    std::vector<bool> seen(5, false);
    std::size_t qi = 0;
    const auto smax = static_cast<std::size_t>(session.interval_count(params.delta_s));
    for (std::size_t s = 0; s < smax; ++s) {
      const auto end = session.interval_end(static_cast<std::int64_t>(s), params.delta_s);
      for (; qi < cleaned.size() && cleaned[qi].ts_ms < end; ++qi)
        seen[cleaned[qi].symbol] = true;
      for (std::size_t i = 0; i < 5; ++i)
        if (!seen[i]) bam[i][s] = scenario.universe.base_price[i];
    }
  }

  const auto market = core::compute_market_corr_series(bam, params.corr_window, false);
  const auto pairs = stats::all_pairs(5);
  std::uint64_t direct_trades = 0;
  double direct_pnl = 0.0;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto trades =
        core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k);
    direct_trades += trades.size();
    for (const auto& t : trades) direct_pnl += t.pnl;
  }

  EXPECT_EQ(streamed.master.trades, direct_trades);
  EXPECT_NEAR(streamed.master.total_pnl, direct_pnl, 1e-9);
}

TEST(Pipeline, DbCollectorPathEquivalent) {
  auto scenario = make_scenario(4, 3);
  const auto root = (std::filesystem::temp_directory_path() /
                     ("mm_engine_db_" + std::to_string(::getpid())))
                        .string();
  {
    auto db = md::TickDb::open(root);
    ASSERT_TRUE(db.has_value());
    ASSERT_TRUE(db->put_symbols(scenario.universe.table).has_value());
    ASSERT_TRUE(db->write_day(md::Date{2008, 3, 3}, scenario.quotes).has_value());
  }

  PipelineConfig mem_cfg;
  mem_cfg.symbols = 4;
  mem_cfg.strategies = {pipeline_params(stats::Ctype::pearson)};
  const auto from_memory = run_pipeline(mem_cfg, scenario.universe, scenario.quotes);

  PipelineConfig db_cfg = mem_cfg;
  db_cfg.tickdb_root = root;
  db_cfg.date = md::Date{2008, 3, 3};
  const auto from_db = run_pipeline(db_cfg, scenario.universe, {});

  EXPECT_EQ(from_db.master.trades, from_memory.master.trades);
  EXPECT_NEAR(from_db.master.total_pnl, from_memory.master.total_pnl, 1e-9);
  std::filesystem::remove_all(root);
}

class PipelineCorrReplicas : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Replicas, PipelineCorrReplicas, ::testing::Values(2, 3, 5));

TEST_P(PipelineCorrReplicas, ParallelCorrelationStageMatchesSerial) {
  // The Fig. 1 "Parallel Correlation Engine" as a rank group must be
  // indistinguishable (bit-identical trades and P&L) from the single-rank
  // stage.
  auto scenario = make_scenario(6, 6);
  PipelineConfig cfg;
  cfg.symbols = 6;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson),
                    pipeline_params(stats::Ctype::maronna)};
  const auto serial = run_pipeline(cfg, scenario.universe, scenario.quotes);

  cfg.correlation_replicas = GetParam();
  const auto parallel = run_pipeline(cfg, scenario.universe, scenario.quotes);

  EXPECT_EQ(parallel.master.trades, serial.master.trades);
  EXPECT_EQ(parallel.master.orders, serial.master.orders);
  EXPECT_NEAR(parallel.master.total_pnl, serial.master.total_pnl, 1e-9);
}

TEST(Pipeline, NettingAccountingConsistent) {
  auto scenario = make_scenario(6, 5);
  PipelineConfig cfg;
  cfg.symbols = 6;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson),
                    pipeline_params(stats::Ctype::maronna)};
  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);
  ASSERT_GT(result.master.orders, 0u);
  // Netting can only reduce (or keep) total shares, never increase.
  EXPECT_LE(result.master.netted_order_shares, result.master.raw_order_shares);
  EXPECT_GT(result.master.raw_order_shares, 0.0);
  const double saving = result.master.netting_savings_fraction();
  EXPECT_GE(saving, 0.0);
  EXPECT_LT(saving, 1.0);
  EXPECT_GT(result.master.peak_gross_notional, 0.0);
  // No limits configured: no breaches recorded.
  EXPECT_EQ(result.master.symbol_limit_breaches, 0u);
  EXPECT_EQ(result.master.gross_limit_breaches, 0u);
}

TEST(Pipeline, RiskLimitsFlagBreaches) {
  auto scenario = make_scenario(6, 5);
  PipelineConfig cfg;
  cfg.symbols = 6;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson),
                    pipeline_params(stats::Ctype::maronna)};
  // Absurdly tight limits: nearly every order breaches.
  cfg.risk.max_symbol_shares = 0.5;
  cfg.risk.max_gross_notional = 1.0;
  const auto result = run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_GT(result.master.symbol_limit_breaches, 0u);
  EXPECT_GT(result.master.gross_limit_breaches, 0u);
  // Observational limits do not change the trading itself.
  EXPECT_GT(result.master.trades, 0u);
}

TEST(Pipeline, ClusteringBranchEmitsSnapshotsWithoutChangingTrades) {
  auto scenario = make_scenario(6, 7);
  PipelineConfig cfg;
  cfg.symbols = 6;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson)};
  const auto plain = run_pipeline(cfg, scenario.universe, scenario.quotes);

  cfg.cluster_every = 50;
  cfg.cluster_count = 3;
  const auto with_clusters = run_pipeline(cfg, scenario.universe, scenario.quotes);

  // Clustering is a pure observer: trading identical.
  EXPECT_EQ(with_clusters.master.trades, plain.master.trades);
  EXPECT_NEAR(with_clusters.master.total_pnl, plain.master.total_pnl, 1e-9);

  ASSERT_FALSE(with_clusters.clusters.empty());
  for (const auto& snap : with_clusters.clusters) {
    EXPECT_EQ(snap.cluster_count, 3);
    EXPECT_EQ(snap.assignment.size(), 6u);
    EXPECT_EQ(snap.interval % 50, 0);
  }
  EXPECT_TRUE(plain.clusters.empty());
}

TEST(Pipeline, SessionAggregatesAcrossDays) {
  const auto universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  PipelineConfig cfg;
  cfg.symbols = 4;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson)};

  const auto session = run_pipeline_session(cfg, universe, gen, 3);
  ASSERT_EQ(session.days.size(), 3u);
  ASSERT_EQ(session.daily_pnl.size(), 3u);

  std::uint64_t trades = 0;
  double pnl = 0.0;
  for (const auto& day : session.days) {
    trades += day.master.trades;
    pnl += day.master.total_pnl;
  }
  EXPECT_EQ(session.total_trades, trades);
  EXPECT_NEAR(session.total_pnl, pnl, 1e-9);

  // Day 0 must equal a standalone single-day run (state resets daily).
  const md::SyntheticDay day0(universe, gen, 0);
  const auto standalone = run_pipeline(cfg, universe, day0.quotes());
  EXPECT_EQ(session.days[0].master.trades, standalone.master.trades);
  EXPECT_NEAR(session.days[0].master.total_pnl, standalone.master.total_pnl, 1e-9);
}

TEST(Pipeline, SmallChannelCapacityStillCorrect) {
  // Harsh backpressure must not change results, only pacing.
  auto scenario = make_scenario(4, 4);
  PipelineConfig cfg;
  cfg.symbols = 4;
  cfg.strategies = {pipeline_params(stats::Ctype::pearson)};
  const auto loose = run_pipeline(cfg, scenario.universe, scenario.quotes);
  cfg.channel_capacity = 2;
  cfg.batch_size = 16;
  const auto tight = run_pipeline(cfg, scenario.universe, scenario.quotes);
  EXPECT_EQ(tight.master.trades, loose.master.trades);
  EXPECT_NEAR(tight.master.total_pnl, loose.master.total_pnl, 1e-9);
}

}  // namespace
}  // namespace mm::engine
