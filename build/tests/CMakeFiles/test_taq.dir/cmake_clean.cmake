file(REMOVE_RECURSE
  "CMakeFiles/test_taq.dir/test_taq.cpp.o"
  "CMakeFiles/test_taq.dir/test_taq.cpp.o.d"
  "test_taq"
  "test_taq.pdb"
  "test_taq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
