
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marketdata/bars.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/bars.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/bars.cpp.o.d"
  "/root/repo/src/marketdata/calendar.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/calendar.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/calendar.cpp.o.d"
  "/root/repo/src/marketdata/cleaner.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/cleaner.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/cleaner.cpp.o.d"
  "/root/repo/src/marketdata/feed.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/feed.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/feed.cpp.o.d"
  "/root/repo/src/marketdata/generator.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/generator.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/generator.cpp.o.d"
  "/root/repo/src/marketdata/symbols.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/symbols.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/symbols.cpp.o.d"
  "/root/repo/src/marketdata/taq.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/taq.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/taq.cpp.o.d"
  "/root/repo/src/marketdata/tickdb.cpp" "src/marketdata/CMakeFiles/mm_marketdata.dir/tickdb.cpp.o" "gcc" "src/marketdata/CMakeFiles/mm_marketdata.dir/tickdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
