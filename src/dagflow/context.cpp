#include "dagflow/context.hpp"

#include "common/error.hpp"
#include "dagflow/graph.hpp"

namespace mm::dag {
namespace {

constexpr std::uint8_t kind_data = 0;
constexpr std::uint8_t kind_eos = 1;

}  // namespace

Context::Context(mpi::Comm& comm, int node, std::string name,
                 const std::vector<Edge>& edges, const std::vector<int>& leader_ranks)
    : comm_(comm), node_(node), name_(std::move(name)) {
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    if (edge.to_node == node) {
      inputs_.push_back({static_cast<int>(e),
                         leader_ranks[static_cast<std::size_t>(edge.from_node)],
                         edge.to_port, true});
    }
    if (edge.from_node == node) {
      outputs_.push_back({static_cast<int>(e),
                          leader_ranks[static_cast<std::size_t>(edge.to_node)],
                          edge.from_port, edge.capacity, true});
    }
  }
}

bool Context::all_inputs_closed() const {
  for (const auto& in : inputs_)
    if (in.open) return false;
  return true;
}

void Context::pump() {
  mpi::RecvStatus status;
  auto payload = comm_.recv(mpi::any_source, mpi::any_tag, &status);

  // Credit for one of my output edges?
  for (auto& out : outputs_) {
    if (credit_tag(out.edge_id) == status.tag && out.peer_node == status.source) {
      ++out.credits;
      return;
    }
  }

  // Data or EOS on one of my input edges.
  for (auto& in : inputs_) {
    if (data_tag(in.edge_id) == status.tag && in.peer_node == status.source) {
      MM_ASSERT_MSG(!payload.empty(), "dagflow: empty transport frame");
      const std::uint8_t kind = payload.front();
      if (kind == kind_eos) {
        in.open = false;
        return;
      }
      MM_ASSERT_MSG(kind == kind_data, "dagflow: unknown frame kind");
      payload.erase(payload.begin());
      ready_.push_back({in.port, std::move(payload)});
      pending_credits_.push_back(in.edge_id);
      return;
    }
  }
  MM_ASSERT_MSG(false, "dagflow: message for an unknown edge");
}

std::optional<InMessage> Context::recv() {
  while (ready_.empty() && !all_inputs_closed()) pump();
  if (ready_.empty()) return std::nullopt;

  InMessage msg = std::move(ready_.front());
  ready_.pop_front();
  // Return one credit to the producer of this message.
  MM_ASSERT(!pending_credits_.empty());
  const int edge_id = pending_credits_.front();
  pending_credits_.pop_front();
  for (const auto& in : inputs_) {
    if (in.edge_id == edge_id) {
      comm_.send(in.peer_node, credit_tag(edge_id), {});
      break;
    }
  }
  ++messages_in_;
  return msg;
}

void Context::emit(int port, std::vector<std::uint8_t> bytes) {
  OutputEdge* target = nullptr;
  for (auto& out : outputs_)
    if (out.port == port) target = &out;
  MM_ASSERT_MSG(target != nullptr, "emit on an unconnected output port");
  MM_ASSERT_MSG(target->open, "emit on a closed output port");

  // Backpressure: service the transport until a credit frees capacity.
  while (target->credits == 0) pump();

  bytes.insert(bytes.begin(), kind_data);
  comm_.send(target->peer_node, data_tag(target->edge_id), std::move(bytes));
  --target->credits;
  ++messages_out_;
}

void Context::close_output(int port) {
  for (auto& out : outputs_) {
    if (out.port == port && out.open) {
      // EOS bypasses flow control: it is a zero-payload frame and the only
      // message allowed to exceed capacity by one.
      comm_.send(out.peer_node, data_tag(out.edge_id), {kind_eos});
      out.open = false;
    }
  }
}

void Context::close_all_outputs() {
  for (auto& out : outputs_) {
    if (out.open) {
      comm_.send(out.peer_node, data_tag(out.edge_id), {kind_eos});
      out.open = false;
    }
  }
}

}  // namespace mm::dag
