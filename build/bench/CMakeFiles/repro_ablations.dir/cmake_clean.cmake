file(REMOVE_RECURSE
  "CMakeFiles/repro_ablations.dir/repro_ablations.cpp.o"
  "CMakeFiles/repro_ablations.dir/repro_ablations.cpp.o.d"
  "repro_ablations"
  "repro_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
