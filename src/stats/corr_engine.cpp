#include "stats/corr_engine.hpp"

#include "mpmini/collectives.hpp"
#include "stats/psd.hpp"

namespace mm::stats {

CorrelationCalculator::CorrelationCalculator(const CorrEngineConfig& config,
                                             std::size_t symbols)
    : config_(config),
      // Cross sums are only needed for Pearson (and Combined's Pearson half).
      windows_(symbols, config.window, config.type != Ctype::maronna),
      scratch_x_(config.window),
      scratch_y_(config.window) {}

void CorrelationCalculator::push(const std::vector<double>& returns) {
  windows_.push(returns);
}

double CorrelationCalculator::pair(std::size_t i, std::size_t j) const {
  MM_ASSERT_MSG(ready(), "correlation requested before window is full");
  switch (config_.type) {
    case Ctype::pearson:
      return windows_.pearson(i, j);
    case Ctype::maronna: {
      windows_.copy_window(i, scratch_x_.data());
      windows_.copy_window(j, scratch_y_.data());
      return maronna(scratch_x_.data(), scratch_y_.data(), windows_.window(),
                     config_.maronna);
    }
    case Ctype::combined: {
      windows_.copy_window(i, scratch_x_.data());
      windows_.copy_window(j, scratch_y_.data());
      const double robust = maronna(scratch_x_.data(), scratch_y_.data(),
                                    windows_.window(), config_.maronna);
      return combine(windows_.pearson(i, j), robust);
    }
  }
  MM_ASSERT_MSG(false, "unreachable Ctype");
  return 0.0;
}

SymMatrix CorrelationCalculator::matrix() const {
  const std::size_t n = symbols();
  SymMatrix m(n, 0.0);
  m.fill_diagonal(1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m.set(i, j, pair(i, j));
  if (config_.repair_psd && !is_psd(m)) m = nearest_psd_correlation(m);
  return m;
}

ParallelCorrelationEngine::ParallelCorrelationEngine(mpi::Comm& comm,
                                                     const CorrEngineConfig& config,
                                                     std::size_t symbols)
    : comm_(comm), calc_(config, symbols) {
  const auto pairs = all_pairs(symbols);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    if (static_cast<int>(k % static_cast<std::size_t>(comm.size())) == comm.rank())
      my_pairs_.push_back(pairs[k]);
  }
}

SymMatrix ParallelCorrelationEngine::step(const std::vector<double>& returns) {
  // Rank 0's return vector is authoritative; everyone mirrors the windows so
  // no window state ever needs to move.
  auto r = mpi::bcast_vector(comm_, returns, 0);
  calc_.push(r);

  const std::size_t n = calc_.symbols();
  if (!calc_.ready()) return SymMatrix{};

  // Compute my shard.
  std::vector<double> mine;
  mine.reserve(my_pairs_.size());
  for (const auto& p : my_pairs_) mine.push_back(calc_.pair(p.i, p.j));

  // Exchange shards; every rank assembles the full matrix.
  auto shards = mpi::allgather_vectors(comm_, mine);
  SymMatrix m(n, 0.0);
  m.fill_diagonal(1.0);
  const auto pairs = all_pairs(n);
  const auto world = static_cast<std::size_t>(comm_.size());
  std::vector<std::size_t> cursor(world, 0);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const std::size_t owner = k % world;
    m.set(pairs[k].i, pairs[k].j, shards[owner][cursor[owner]++]);
  }
  if (calc_.config().repair_psd && !is_psd(m)) m = nearest_psd_correlation(m);
  return m;
}

}  // namespace mm::stats
