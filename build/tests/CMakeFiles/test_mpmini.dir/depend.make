# Empty dependencies file for test_mpmini.
# This may be replaced when dependencies are built.
