// Market scan: the brute-force, market-wide search the paper advocates.
//
// Backtests EVERY pair of the universe on one day with the base parameter set
// and ranks the results — demonstrating the Approach 3 shared-correlation
// path that makes scanning all n(n-1)/2 pairs cheap, and surfacing which
// pairs (mostly same-sector) are the good statistical-arbitrage candidates.
//
//   $ ./market_scan [--symbols 30] [--ctype maronna] [--top 15]
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/backtester.hpp"
#include "core/metrics.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("market_scan", "Brute-force backtest of every pair in the universe");
  auto& symbols = cli.add_int("symbols", 30, "universe size (2..61)");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& ctype_arg = cli.add_string("ctype", "pearson", "pearson|maronna|combined");
  auto& top = cli.add_int("top", 12, "rows to display");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto ctype = stats::parse_ctype(ctype_arg);
  if (!ctype) {
    std::fprintf(stderr, "%s\n", ctype.error().message.c_str());
    return 2;
  }

  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  const md::SyntheticDay day(universe, gen, 0);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), n, gen.session, 30);

  core::StrategyParams params = core::ParamGrid::base();
  params.ctype = *ctype;
  params.divergence = 0.0005;

  Stopwatch watch;
  const auto market = core::compute_market_corr_series(
      bam, params.corr_window, *ctype != stats::Ctype::pearson);
  const double corr_seconds = watch.elapsed_seconds();

  struct Row {
    std::size_t pair_index;
    std::size_t trades;
    double daily_return;
    double avg_corr;
  };
  std::vector<Row> rows;
  const auto pairs = stats::all_pairs(n);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto trades =
        core::run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k);
    std::vector<double> returns;
    for (const auto& t : trades) returns.push_back(t.trade_return);
    double corr_sum = 0.0;
    std::int64_t count = 0;
    for (std::int64_t s = market.first_valid; s < market.smax; s += 10) {
      corr_sum += market.at(*ctype, k, s);
      ++count;
    }
    rows.push_back({k, trades.size(), core::cumulative_return(returns),
                    count > 0 ? corr_sum / static_cast<double>(count) : 0.0});
  }
  const double total_seconds = watch.elapsed_seconds();

  std::printf("scanned %zu pairs (%zu symbols) with %s correlation in %.2f s "
              "(%.2f s building the shared correlation series)\n\n",
              pairs.size(), n, stats::to_string(*ctype), total_seconds, corr_seconds);

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.daily_return > b.daily_return; });

  const auto print_row = [&](const Row& r) {
    const auto& p = pairs[r.pair_index];
    const std::string name =
        universe.table.name(p.i) + "/" + universe.table.name(p.j);
    const bool same_sector = universe.sector[p.i] == universe.sector[p.j];
    std::printf("  %-12s %8zu %10.3f%% %8.2f   %s\n", name.c_str(), r.trades,
                r.daily_return * 100.0, r.avg_corr,
                same_sector ? universe.sector_names[static_cast<std::size_t>(
                                                        universe.sector[p.i])]
                                  .c_str()
                            : "-");
  };

  std::printf("top pairs by daily return:\n");
  std::printf("  %-12s %8s %11s %8s   %s\n", "pair", "trades", "return", "avgC",
              "sector");
  for (std::int64_t k = 0; k < top && k < static_cast<std::int64_t>(rows.size()); ++k)
    print_row(rows[static_cast<std::size_t>(k)]);

  std::printf("\nbottom pairs:\n");
  for (std::int64_t k = std::max<std::int64_t>(0,
                                               static_cast<std::int64_t>(rows.size()) - 3);
       k < static_cast<std::int64_t>(rows.size()); ++k)
    print_row(rows[static_cast<std::size_t>(k)]);

  // How concentrated is the opportunity in same-sector pairs?
  double same_sum = 0.0, cross_sum = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  for (const auto& r : rows) {
    const auto& p = pairs[r.pair_index];
    if (universe.sector[p.i] == universe.sector[p.j]) {
      same_sum += r.avg_corr;
      ++same_n;
    } else {
      cross_sum += r.avg_corr;
      ++cross_n;
    }
  }
  if (same_n > 0 && cross_n > 0) {
    std::printf("\naverage correlation: %.3f within sectors vs %.3f across "
                "(%zu vs %zu pairs)\n",
                same_sum / static_cast<double>(same_n),
                cross_sum / static_cast<double>(cross_n), same_n, cross_n);
  }
  return 0;
}
