// Market-wide correlation engines: serial and parallel.
//
// This is the enabling component of the paper (§II): producing the full
// n × n correlation matrix over a sliding M-return window, every ∆s interval,
// in an online fashion. Pearson entries come from ReturnWindows' O(1)
// incremental sums (full matrices via the blocked pearson_matrix kernel);
// Maronna entries re-estimate each pair's 2×2 robust scatter over the window
// (the expensive part the paper parallelizes [14]), warm-started from the
// previous step's converged estimate when `warm_start` is enabled.
//
// ParallelCorrelationEngine shards the n(n-1)/2 pairs across the ranks of an
// mpmini communicator — the "Parallel Correlation Engine" box of Fig. 1.
#pragma once

#include <vector>

#include "mpmini/comm.hpp"
#include "obs/registry.hpp"
#include "stats/correlation.hpp"
#include "stats/sym_matrix.hpp"
#include "stats/windows.hpp"

namespace mm::stats {

struct CorrEngineConfig {
  Ctype type = Ctype::pearson;
  std::size_t window = 100;  // the paper's M
  MaronnaConfig maronna{};
  // Repair the assembled matrix to PSD (meaningful for Maronna/Combined;
  // costs an O(n³) eigendecomposition per step).
  bool repair_psd = false;
  // Warm-start Maronna from the previous step's converged estimate (see
  // WarmMaronna). Results agree with the batch estimator to within the
  // convergence tolerance instead of bit-for-bit, so this is opt-in.
  bool warm_start = false;
  // Cold-restart cadence for the warm-started path.
  int warm_restart_interval = kWarmRestartInterval;
  // Pair-iteration tile edge (symbols per block) for the O(n²) pair space:
  // pairs are walked in tile-major order (see tiled_pairs), so a contiguous
  // span of work touches at most ~2·tile distinct window rows and a rank's
  // shard stays cache-resident at thousands of symbols. 0 degrades to the
  // row-major canonical order.
  std::size_t pair_tile = 64;
};

// Single-threaded engine: push one return per symbol per interval, then read
// correlations or the full matrix.
class CorrelationCalculator {
 public:
  CorrelationCalculator(const CorrEngineConfig& config, std::size_t symbols);

  void push(const std::vector<double>& returns);
  bool ready() const { return windows_.ready(); }
  std::size_t symbols() const { return windows_.symbols(); }
  const CorrEngineConfig& config() const { return config_; }

  // Correlation of one pair at the current step (requires ready()).
  double pair(std::size_t i, std::size_t j) const;

  // Full matrix at the current step, unit diagonal. matrix_into reuses the
  // caller's storage (resizing only when the symbol count changed), so a
  // steady-state loop is allocation-free; matrix() is the allocating
  // convenience form.
  void matrix_into(SymMatrix& out) const;
  SymMatrix matrix() const;

 private:
  // Unwrap every symbol's ring buffer into the contiguous arena, once per
  // step, shared by all pair estimates of the step.
  void ensure_unwrapped() const;
  const double* window_view(std::size_t symbol) const {
    return unwrap_.data() + symbol * config_.window;
  }

  CorrEngineConfig config_;
  ReturnWindows windows_;
  // Step-scoped caches: pair() is logically const — these only memoize work
  // derived from the current window state.
  mutable std::vector<double> unwrap_;  // [symbol * window], oldest -> newest
  mutable std::size_t unwrap_step_ = 0;  // windows_.steps() the arena reflects
  mutable std::vector<unsigned char> mad_zero_;  // per-symbol, warm path only
  mutable WarmMaronna warm_;
  mutable MaronnaScratch maronna_scratch_;  // cold-path median/MAD buffers
};

// Pair-sharded parallel engine. All ranks of `comm` construct it with the
// same arguments, then call step() collectively once per interval; rank 0
// passes the market-wide return vector (other ranks' argument is ignored)
// and every rank receives the assembled matrix (empty until windows fill).
//
// Shards are static, contiguous blocks of the tile-major pair order (see
// tiled_pairs / CorrEngineConfig::pair_tile), balanced to within one pair:
// rank r owns pairs [offsets[r], offsets[r+1]). Block sharding over the
// tiled order keeps each rank's warm-start state and window rows
// cache-resident at thousands of symbols and makes shard assembly a linear
// copy instead of a round-robin scatter.
//
// The step is built around persistent buffers: the assembled matrix, the
// mirrored return vector and every transport staging buffer are members
// reused across steps, and step() returns a reference to the member matrix.
// A single-rank engine touches no transport at all and is allocation-free in
// steady state (asserted by tests/test_corr_alloc.cpp); multi-rank steps
// allocate only the transport's bounded per-message envelopes. Exchange runs
// over a private duplicate of `comm`: non-roots send their shard to rank 0,
// which assembles (and PSD-repairs, if configured) once and broadcasts the
// packed triangle.
//
// Per-step kernel timings land in mm::obs nanosecond histograms on the given
// registry (corr.step.broadcast_ns / compute_ns / exchange_ns / assemble_ns),
// one sample per rank per step — read them with Registry::snapshot(). With a
// null registry the process-wide obs::Registry::global() is used. The serial
// fast path records compute_ns only.
class ParallelCorrelationEngine {
 public:
  ParallelCorrelationEngine(mpi::Comm& comm, const CorrEngineConfig& config,
                            std::size_t symbols, obs::Registry* registry = nullptr);

  // Collective. Returns the matrix once windows are full, else an empty one.
  // The reference stays valid until the next step() on this engine.
  const SymMatrix& step(const std::vector<double>& returns);

  bool ready() const { return calc_.ready(); }
  std::size_t local_pair_count() const {
    const auto r = static_cast<std::size_t>(comm_.rank());
    return offsets_[r + 1] - offsets_[r];
  }

 private:
  mpi::Comm& comm_;
  mpi::Comm dup_;  // private channel namespace for the shard exchange
  CorrelationCalculator calc_;
  std::vector<PairIndex> pairs_;      // tile-major order, built once
  std::vector<std::size_t> offsets_;  // size() + 1 block boundaries
  std::vector<double> mine_;          // this rank's shard values, reused
  SymMatrix matrix_;                  // assembled result, reused across steps
  std::vector<double> returns_;              // mirrored market returns
  std::vector<std::uint8_t> bcast_buf_;      // return-vector broadcast staging
  std::vector<std::uint8_t> shard_buf_;      // my shard, packed for the root
  std::vector<std::uint8_t> mat_buf_;        // packed-matrix broadcast staging
  std::vector<double> shard_vals_;           // root-side shard decode scratch
  // Step-phase histograms (see class comment); handles resolved once.
  obs::Histogram* h_broadcast_;
  obs::Histogram* h_compute_;
  obs::Histogram* h_exchange_;
  obs::Histogram* h_assemble_;
};

}  // namespace mm::stats
