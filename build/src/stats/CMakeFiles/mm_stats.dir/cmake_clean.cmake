file(REMOVE_RECURSE
  "CMakeFiles/mm_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/mm_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/mm_stats.dir/boxplot.cpp.o"
  "CMakeFiles/mm_stats.dir/boxplot.cpp.o.d"
  "CMakeFiles/mm_stats.dir/cluster.cpp.o"
  "CMakeFiles/mm_stats.dir/cluster.cpp.o.d"
  "CMakeFiles/mm_stats.dir/corr_engine.cpp.o"
  "CMakeFiles/mm_stats.dir/corr_engine.cpp.o.d"
  "CMakeFiles/mm_stats.dir/correlation.cpp.o"
  "CMakeFiles/mm_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/mm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/mm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/mm_stats.dir/inference.cpp.o"
  "CMakeFiles/mm_stats.dir/inference.cpp.o.d"
  "CMakeFiles/mm_stats.dir/maronna.cpp.o"
  "CMakeFiles/mm_stats.dir/maronna.cpp.o.d"
  "CMakeFiles/mm_stats.dir/pearson.cpp.o"
  "CMakeFiles/mm_stats.dir/pearson.cpp.o.d"
  "CMakeFiles/mm_stats.dir/psd.cpp.o"
  "CMakeFiles/mm_stats.dir/psd.cpp.o.d"
  "CMakeFiles/mm_stats.dir/rank_corr.cpp.o"
  "CMakeFiles/mm_stats.dir/rank_corr.cpp.o.d"
  "CMakeFiles/mm_stats.dir/windows.cpp.o"
  "CMakeFiles/mm_stats.dir/windows.cpp.o.d"
  "libmm_stats.a"
  "libmm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
