#include "obs/flight.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "obs/prometheus.hpp"

namespace mm::obs {
namespace {

Status write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return Error{Errc::io_error, "cannot open " + path + " for writing"};
  const std::size_t written =
      text.empty() ? 0 : std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size())
    return Error{Errc::io_error, "short write to " + path};
  return {};
}

std::string rank_json(std::size_t rank, const RankHealth& h,
                      const std::vector<std::string>& rank_nodes) {
  const std::string node =
      rank < rank_nodes.size() ? rank_nodes[rank] : std::string{};
  return format(
      "{\"rank\":%zu,\"node\":\"%s\",\"state\":\"%s\",\"seq\":%llu,"
      "\"last_seen_ns\":%lld,\"detected_ns\":%lld,\"missed_scans\":%u}",
      rank, json_escape(node).c_str(), liveness_name(h.state),
      static_cast<unsigned long long>(h.seq),
      static_cast<long long>(h.last_seen_ns),
      static_cast<long long>(h.detected_ns), h.missed_scans);
}

}  // namespace

// Kept as the public name the bundle emitters use; the implementation is the
// tree-wide shared escaper in mm::json.
std::string json_escape(const std::string& text) {
  return json::escape(text);
}

Expected<std::string> FlightRecorder::dump(
    const std::vector<CrashEntry>& crashes,
    const std::vector<RankHealth>& health,
    const std::vector<std::string>& rank_nodes, const TraceSink* trace,
    const std::vector<SnapshotFrame>& frames, const Snapshot& metrics) const {
  namespace fs = std::filesystem;

  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  // Millisecond stamp plus a process-wide sequence keeps back-to-back dumps
  // (tests, rapid restarts) from landing in the same directory.
  static std::atomic<int> dump_seq{0};
  const std::string parent = config_.dir.empty() ? std::string{"flight"} : config_.dir;
  const std::string bundle =
      parent + "/" + format("postmortem-%lld-%d", static_cast<long long>(wall_ms),
                            dump_seq.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  fs::create_directories(bundle, ec);
  if (ec)
    return Error{Errc::io_error, "create " + bundle + ": " + ec.message()};

  std::string report = "{\n";
  report += format("  \"generated_unix_ms\": %lld,\n",
                   static_cast<long long>(wall_ms));
  report += format("  \"dead_ranks\": %zu,\n", crashes.size());
  report += "  \"crashes\": [";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashEntry& c = crashes[i];
    if (i > 0) report += ",";
    report += format(
        "\n    {\"rank\":%d,\"node\":\"%s\",\"reason\":\"%s\","
        "\"error\":\"%s\",\"state\":\"%s\",\"seq\":%llu,"
        "\"last_seen_ns\":%lld,\"detected_ns\":%lld}",
        c.rank, json_escape(c.node).c_str(), json_escape(c.reason).c_str(),
        json_escape(c.error).c_str(), liveness_name(c.health.state),
        static_cast<unsigned long long>(c.health.seq),
        static_cast<long long>(c.health.last_seen_ns),
        static_cast<long long>(c.health.detected_ns));
  }
  report += crashes.empty() ? "],\n" : "\n  ],\n";
  report += "  \"ranks\": [";
  for (std::size_t r = 0; r < health.size(); ++r) {
    if (r > 0) report += ",";
    report += "\n    " + rank_json(r, health[r], rank_nodes);
  }
  report += health.empty() ? "]\n" : "\n  ]\n";
  report += "}\n";
  if (Status s = write_text(bundle + "/crash_report.json", report); !s) return s.error();

  const std::string trace_json =
      trace != nullptr ? trace->chrome_json() : std::string{"{\"traceEvents\":[]}"};
  if (Status s = write_text(bundle + "/trace.json", trace_json); !s) return s.error();

  const std::size_t keep = config_.snapshot_frames;
  const std::size_t skip =
      keep > 0 && frames.size() > keep ? frames.size() - keep : 0;
  std::string snaps = "{\"frames\":[";
  bool first = true;
  for (std::size_t i = skip; i < frames.size(); ++i) {
    if (!first) snaps += ",";
    first = false;
    snaps += format("\n{\"t_ns\":%lld,\"snapshot\":",
                    static_cast<long long>(frames[i].t_ns));
    snaps += frames[i].snap.to_json();
    snaps += "}";
  }
  snaps += "\n]}\n";
  if (Status s = write_text(bundle + "/snapshots.json", snaps); !s) return s.error();

  if (Status s = write_text(bundle + "/metrics.prom", prom_render(metrics)); !s)
    return s.error();

  return bundle;
}

}  // namespace mm::obs
