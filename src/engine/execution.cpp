#include "engine/execution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mm::engine {
namespace {

// Book state per symbol replayed from the quote stream.
struct Book {
  double bid = 0.0;
  double ask = 0.0;
  md::TimeMs last_update = -1;
  bool valid() const { return last_update >= 0 && bid > 0.0 && ask >= bid; }
};

}  // namespace

ExecutionResult simulate_execution(const std::vector<Order>& orders_in,
                                   const std::vector<md::Quote>& quotes,
                                   std::size_t symbol_count,
                                   const ExecutionConfig& config) {
  // The master's log interleaves strategy nodes; replay in decision order.
  std::vector<Order> orders = orders_in;
  std::stable_sort(orders.begin(), orders.end(),
                   [](const Order& a, const Order& b) { return a.interval < b.interval; });

  ExecutionResult result;
  std::vector<Book> books(symbol_count);
  std::size_t qi = 0;

  const auto advance_books_to = [&](md::TimeMs when) {
    for (; qi < quotes.size() && quotes[qi].ts_ms <= when; ++qi) {
      const auto& q = quotes[qi];
      if (q.symbol >= symbol_count) continue;
      Book& book = books[q.symbol];
      book.bid = q.bid;
      book.ask = q.ask;
      book.last_update = q.ts_ms;
    }
  };

  const auto leg_fill = [&](std::uint32_t symbol, double shares,
                            double decision_price) -> LegFill {
    LegFill fill;
    fill.symbol = symbol;
    fill.shares = shares;
    fill.decision_price = decision_price;

    const Book& book = books[symbol];
    double price;
    if (!config.cross_spread) {
      price = book.valid() ? 0.5 * (book.bid + book.ask) : decision_price;
    } else if (book.valid()) {
      price = shares > 0 ? book.ask : book.bid;
    } else {
      price = decision_price;
    }
    // Linear impact: concession grows with order size (per 100 shares).
    const double lots = std::abs(shares) / 100.0;
    const double impact = price * config.impact_frac_per_lot * lots;
    price += shares > 0 ? impact : -impact;

    fill.fill_price = price;
    // Positive shortfall = execution worse than decision: paid more on buys,
    // received less on sells.
    fill.shortfall_dollars = (price - decision_price) * shares;
    return fill;
  };

  for (const auto& order : orders) {
    const md::TimeMs decision_time =
        config.session.interval_end(order.interval, config.delta_s);
    const md::TimeMs fill_time = decision_time + config.latency_ms;
    advance_books_to(fill_time);

    // Lost opportunity: a leg with no (cleaned) quote near the fill time.
    const auto usable = [&](std::uint32_t symbol) {
      const Book& book = books[symbol];
      return book.valid() &&
             fill_time - book.last_update <= config.fill_horizon_ms;
    };
    if (!usable(order.symbol_i) || !usable(order.symbol_j)) {
      ++result.orders_lost;
      continue;
    }

    const auto fill_i = leg_fill(order.symbol_i, order.shares_i, order.price_i);
    const auto fill_j = leg_fill(order.symbol_j, order.shares_j, order.price_j);
    result.fills.push_back(fill_i);
    result.fills.push_back(fill_j);
    ++result.orders_filled;
    result.decision_notional += std::abs(fill_i.shares) * fill_i.decision_price +
                                std::abs(fill_j.shares) * fill_j.decision_price;
    result.shortfall_dollars += fill_i.shortfall_dollars + fill_j.shortfall_dollars;
  }
  return result;
}

}  // namespace mm::engine
