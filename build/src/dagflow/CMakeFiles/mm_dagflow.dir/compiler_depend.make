# Empty compiler generated dependencies file for mm_dagflow.
# This may be replaced when dependencies are built.
