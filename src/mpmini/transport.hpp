// The pluggable transport seam under Comm/World.
//
// A Transport moves envelopes toward destination mailboxes. Everything above
// it — envelope matching, Mprobe reservation, deadline waits, fault
// injection, collectives, trace headers — is transport-agnostic, which is
// what makes "swap in a real interconnect" a transport change rather than a
// runtime rewrite:
//
//   * InProcessTransport — all ranks in one process; one mailbox per rank,
//     messages moved by SPSC lane rings (ring mode) or the locked mailbox
//     path. This is the PR 6 hot path, unchanged, behind the interface.
//   * SocketTransport (socket_transport.hpp) — one process per rank, full
//     TCP mesh; only the local rank's mailbox exists here.
#pragma once

#include <memory>

#include "mpmini/mailbox.hpp"
#include "mpmini/wait.hpp"

namespace mm::mpi {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportMode mode() const = 0;

  // Move `msg` toward `dest_world`'s mailbox. `src_world` names the sending
  // rank (lane selection in ring mode, peer link in socket mode). May throw
  // when the destination is unreachable — the sender's rank is poisoned,
  // matching a fault-plan kill.
  virtual void transmit(int src_world, int dest_world, Message&& msg) = 0;

  // The mailbox `world_rank`'s receives and probes match in. Remote-rank
  // mailboxes do not exist on a socket transport (asserted).
  virtual Mailbox& mailbox(int world_rank) = 0;

  // Wire the queued-depth / ring-depth high-watermark gauges through to the
  // mailboxes this transport hosts.
  virtual void attach_obs(obs::Gauge* queue_peak, obs::Gauge* ring_peak) = 0;

  // Lifecycle for transports holding external resources (sockets, reader
  // threads). start() runs before the rank main, stop() after it returns.
  virtual void start() {}
  virtual void stop() {}
};

class InProcessTransport final : public Transport {
 public:
  // `mode` must be ring or locked; socket worlds are built by Environment
  // with a SocketTransport instead.
  InProcessTransport(int world_size, TransportMode mode);

  TransportMode mode() const override { return mode_; }
  void transmit(int src_world, int dest_world, Message&& msg) override;
  Mailbox& mailbox(int world_rank) override;
  void attach_obs(obs::Gauge* queue_peak, obs::Gauge* ring_peak) override;

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TransportMode mode_;
};

}  // namespace mm::mpi
