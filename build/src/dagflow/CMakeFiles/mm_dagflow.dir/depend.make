# Empty dependencies file for mm_dagflow.
# This may be replaced when dependencies are built.
