#include "stats/boxplot.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace mm::stats {

BoxPlot box_plot(std::vector<double> xs, double fence) {
  MM_ASSERT_MSG(!xs.empty(), "box_plot of empty sample");
  std::sort(xs.begin(), xs.end());

  BoxPlot box;
  box.q1 = quantile(xs, 0.25);
  box.median = quantile(xs, 0.5);
  box.q3 = quantile(xs, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - fence * iqr;
  const double hi_fence = box.q3 + fence * iqr;

  box.whisker_low = box.q1;
  box.whisker_high = box.q3;
  for (double x : xs) {
    if (x >= lo_fence) {
      box.whisker_low = x;
      break;
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      box.whisker_high = *it;
      break;
    }
  }
  for (double x : xs)
    if (x < lo_fence || x > hi_fence) box.outliers.push_back(x);
  return box;
}

std::string render_ascii(const BoxPlot& box, double axis_min, double axis_max,
                         std::size_t width) {
  MM_ASSERT(width >= 10);
  MM_ASSERT(axis_max > axis_min);
  std::string line(width, ' ');
  const auto pos = [&](double x) -> std::size_t {
    const double f = (x - axis_min) / (axis_max - axis_min);
    const double clamped = std::clamp(f, 0.0, 1.0);
    return static_cast<std::size_t>(std::lround(clamped * static_cast<double>(width - 1)));
  };

  const std::size_t wl = pos(box.whisker_low);
  const std::size_t q1 = pos(box.q1);
  const std::size_t md = pos(box.median);
  const std::size_t q3 = pos(box.q3);
  const std::size_t wh = pos(box.whisker_high);

  for (std::size_t i = wl; i <= wh && i < width; ++i) line[i] = '-';
  for (std::size_t i = q1; i <= q3 && i < width; ++i) line[i] = '=';
  line[wl] = '|';
  line[wh] = '|';
  line[q1] = '[';
  line[q3] = ']';
  line[md] = '#';
  for (double x : box.outliers) {
    const std::size_t p = pos(x);
    if (line[p] == ' ') line[p] = '*';
  }
  return line;
}

}  // namespace mm::stats
