// Communicators and the shared world for the mpmini runtime.
//
// A World owns one mailbox per rank. A Comm is a view over a subset of world
// ranks (the world communicator covers all of them) with its own id, so that
// traffic in different communicators never cross-matches — the property the
// DAG scheduler uses to give every edge and every collective group a private
// channel namespace.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "mpmini/fault.hpp"
#include "mpmini/mailbox.hpp"
#include "mpmini/message.hpp"
#include "mpmini/request.hpp"
#include "mpmini/transport.hpp"
#include "mpmini/wait.hpp"
#include "obs/registry.hpp"

namespace mm::mpi {

// Transport-level telemetry handles, resolved once per world when a registry
// is attached (all null otherwise — the hot path checks one pointer).
struct WorldObs {
  obs::Counter* send_messages = nullptr;     // mpmini.send.messages
  obs::Counter* send_bytes = nullptr;        // mpmini.send.bytes
  obs::Counter* recv_messages = nullptr;     // mpmini.recv.messages
  obs::Counter* recv_bytes = nullptr;        // mpmini.recv.bytes
  obs::Counter* timeouts = nullptr;          // mpmini.deadline.timeouts
  obs::Counter* faults_dropped = nullptr;    // mpmini.fault.dropped
  obs::Counter* faults_duplicated = nullptr; // mpmini.fault.duplicated
  obs::Counter* faults_delayed = nullptr;    // mpmini.fault.delayed
};

class World {
 public:
  // `mode` picks the intra-process transport: lock-free lane rings (default,
  // or whatever MM_MPMINI_TRANSPORT says) or the legacy locked mailbox path
  // (the bench's before/after baseline). Ring mode requires each world rank
  // to SEND from a single thread (see Comm); the locked mode has no such
  // restriction. A bare World never builds the socket transport — when the
  // env selects it, Environment::run routes through run_rendezvous and
  // injects a SocketTransport via the third constructor.
  explicit World(int size);
  World(int size, TransportMode mode);
  World(int size, std::unique_ptr<Transport> transport);

  int size() const { return size_; }
  TransportMode transport() const { return transport_->mode(); }
  Transport& transport_layer() { return *transport_; }
  Mailbox& mailbox(int world_rank) { return transport_->mailbox(world_rank); }
  void transmit(int src_world, int dest_world, Message&& msg) {
    transport_->transmit(src_world, dest_world, std::move(msg));
  }
  std::uint64_t allocate_comm_id() { return next_comm_id_.fetch_add(1); }

  // Install the fault plan BEFORE any rank thread starts (never concurrently
  // with traffic); ranks read it without synchronization afterwards.
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  // Register transport metrics on `registry` and start recording into them.
  // Like the fault plan, attach BEFORE any rank thread starts.
  void attach_obs(obs::Registry& registry);
  const WorldObs& metrics() const { return metrics_; }

  // Advance `world_rank`'s operation counter; throws RankKilled once the
  // fault plan's kill step is reached (and on every operation after it).
  void check_op(int world_rank);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

 private:
  int size_ = 0;
  std::unique_ptr<Transport> transport_;
  std::atomic<std::uint64_t> next_comm_id_{1};
  FaultPlan fault_plan_{};
  WorldObs metrics_{};
  std::unique_ptr<std::atomic<std::uint64_t>[]> op_counts_;
};

// One rank's handle on a communicator. Each rank thread owns its own Comm
// instance; instances are cheap to copy (they share the World).
//
// Threading contract (ring transport, the default): all sends attributed to
// one world rank — across every Comm built for that rank — must originate
// from a single thread, because the rank's outbound lanes are
// single-producer rings. Receives and probes on one rank may run from
// multiple threads (the mailbox serializes them). Debug builds assert the
// send-side rule; use TransportMode::locked (or MM_MPMINI_TRANSPORT=locked)
// when a rank must send from several threads.
class Comm {
 public:
  // World communicator for `rank` (used by Environment).
  Comm(World* world, std::uint64_t comm_id, int rank, std::vector<int> members);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  // --- point to point -------------------------------------------------
  // Buffered send: the payload is copied into dest's mailbox immediately.
  void send(int dest, int tag, std::vector<std::uint8_t> payload);
  Request isend(int dest, int tag, std::vector<std::uint8_t> payload);

  // Blocking receive; source/tag may be wildcards. If status is non-null the
  // actual envelope is reported (useful with wildcards).
  std::vector<std::uint8_t> recv(int source = any_source, int tag = any_tag,
                                 RecvStatus* status = nullptr);
  Request irecv(int source = any_source, int tag = any_tag);

  // Deadline receive: the payload, or Errc::timeout if no matching message
  // arrived in time. On timeout the posted receive is withdrawn — a message
  // arriving later stays available for future receives instead of being
  // swallowed by an abandoned ticket.
  Expected<std::vector<std::uint8_t>> recv_for(std::chrono::milliseconds timeout,
                                               int source = any_source,
                                               int tag = any_tag,
                                               RecvStatus* status = nullptr);

  RecvStatus probe(int source = any_source, int tag = any_tag);
  bool iprobe(int source = any_source, int tag = any_tag, RecvStatus* status = nullptr);

  // Deadline probe: the matching envelope (reserved for this thread, see
  // Mailbox) or Errc::timeout.
  Expected<RecvStatus> probe_for(std::chrono::milliseconds timeout,
                                 int source = any_source, int tag = any_tag);

  // Combined send+receive (deadlock-free even when both peers call it
  // simultaneously, because sends are buffered).
  std::vector<std::uint8_t> sendrecv(int dest, int send_tag,
                                     std::vector<std::uint8_t> payload, int source,
                                     int recv_tag, RecvStatus* status = nullptr);

  // Typed conveniences for trivially copyable values / element vectors.
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    send(dest, tag, std::move(buf));
  }

  template <typename T>
  T recv_value(int source = any_source, int tag = any_tag, RecvStatus* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto buf = recv(source, tag, status);
    MM_ASSERT_MSG(buf.size() == sizeof(T), "recv_value: payload size mismatch");
    T value;
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  template <typename T>
  void send_span(int dest, int tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf(count * sizeof(T));
    std::memcpy(buf.data(), data, buf.size());
    send(dest, tag, std::move(buf));
  }

  template <typename T>
  std::vector<T> recv_elems(int source = any_source, int tag = any_tag,
                            RecvStatus* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto buf = recv(source, tag, status);
    MM_ASSERT_MSG(buf.size() % sizeof(T) == 0, "recv_elems: payload not a whole count");
    std::vector<T> out(buf.size() / sizeof(T));
    std::memcpy(out.data(), buf.data(), buf.size());
    return out;
  }

  // --- byte-level collectives ------------------------------------------
  // All members must call each collective, in the same order. Typed wrappers
  // (reduce/allreduce/gather/...) live in collectives.hpp.
  void barrier();
  // At root `buf` is the input; at every rank it holds root's bytes on return.
  void bcast_bytes(std::vector<std::uint8_t>& buf, int root);
  // Root receives all members' buffers, in rank order; non-roots get {}.
  std::vector<std::vector<std::uint8_t>> gather_bytes(std::vector<std::uint8_t> mine,
                                                      int root);
  // Every rank receives all members' buffers, in rank order.
  std::vector<std::vector<std::uint8_t>> allgather_bytes(std::vector<std::uint8_t> mine);
  // Root supplies one buffer per member; each member gets its own.
  std::vector<std::uint8_t> scatter_bytes(
      const std::vector<std::vector<std::uint8_t>>& parts, int root);

  // Partition members by color, order by (key, rank). Collective.
  Comm split(int color, int key);

  // Duplicate into a fresh communicator id (private channel namespace).
  // Collective.
  Comm duplicate();

  World& world() const { return *world_; }
  std::uint64_t id() const { return comm_id_; }

 private:
  // Next internal tag for collectives; each member advances identically
  // because collectives must be invoked in the same order everywhere.
  int next_collective_tag();

  void internal_send(int dest, int tag, std::vector<std::uint8_t> payload);

  // Fault-plan hook at the start of every operation (may throw RankKilled).
  void fault_point();

  World* world_ = nullptr;
  std::uint64_t comm_id_ = 0;
  int rank_ = 0;                // my rank within this communicator
  std::vector<int> members_;    // comm rank -> world rank
  std::uint64_t collective_seq_ = 0;
  std::uint64_t send_seq_ = 0;
};

}  // namespace mm::mpi
