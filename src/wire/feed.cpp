#include "wire/feed.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

namespace mm::wire {

TcpFeedServer::TcpFeedServer(DayResolver resolver, TcpFeedConfig config)
    : resolver_(std::move(resolver)), config_(std::move(config)) {
  MM_ASSERT_MSG(resolver_ != nullptr, "TcpFeedServer needs a day resolver");
}

TcpFeedServer::~TcpFeedServer() { stop(); }

Status TcpFeedServer::start(std::uint16_t port) {
  MM_ASSERT_MSG(!running_.load(), "TcpFeedServer already started");
  auto listener = tcp_listen(config_.host, port, &port_);
  if (!listener) return listener.error();
  listener_ = std::move(*listener);
  running_.store(true);
  thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void TcpFeedServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock the accept loop's poll by racing its next timeout; the loop
  // re-checks running_ every 50 ms.
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void TcpFeedServer::accept_loop() {
  while (running_.load()) {
    auto conn = tcp_accept(listener_, std::chrono::milliseconds{50});
    if (!conn) {
      if (conn.error().code == Errc::timeout) continue;
      if (running_.load())
        MM_LOG_WARN("feed server accept failed: " << conn.error().to_string());
      return;
    }
    serve(std::move(*conn));
  }
}

void TcpFeedServer::serve(Socket conn) {
  set_nodelay(conn);
  // Read frames until the client's hello arrives (a conforming client sends
  // it first and nothing else).
  FrameParser parser;
  std::uint8_t rx[512];
  Hello hello;
  bool have_hello = false;
  while (!have_hello) {
    auto n = recv_some(conn, rx, sizeof(rx));
    if (!n || *n == 0) return;  // client went away before subscribing
    parser.feed(rx, *n);
    FrameView v;
    while (parser.next(&v)) {
      auto h = decode_hello(v);
      if (!h) {
        MM_LOG_WARN("feed server: rejecting session: " << h.error().to_string());
        return;
      }
      hello = std::move(*h);
      have_hello = true;
      break;
    }
    if (parser.failed()) {
      MM_LOG_WARN("feed server: corrupt hello stream: " << parser.error());
      return;
    }
  }

  auto day = resolver_(hello.key);
  if (!day) {
    // No day for that key: close without end_of_day; the client surfaces the
    // truncation as an error.
    MM_LOG_WARN("feed server: no day for key '" << hello.key
                                                << "': " << day.error().to_string());
    return;
  }

  FrameWriter writer;
  writer.hello(hello.session, hello.key);  // echo confirms the subscription
  std::uint64_t since_heartbeat = 0;
  for (const md::Quote& q : *day) {
    writer.quote(q);
    if (++since_heartbeat == config_.heartbeat_every) {
      writer.heartbeat(since_heartbeat);
      since_heartbeat = 0;
    }
    // Flush in ~64 KB slabs so the writer buffer stays bounded.
    if (writer.size() >= (std::size_t{64} << 10)) {
      if (!send_all(conn, writer.bytes().data(), writer.size())) return;
      writer.clear();
    }
  }
  writer.end_of_day(day->size());
  if (!send_all(conn, writer.bytes().data(), writer.size())) return;
  sessions_.fetch_add(1);
}

UdpPublisher::UdpPublisher(std::string host, std::uint16_t port,
                           UdpPublisherConfig config)
    : host_(std::move(host)), port_(port), config_(config) {
  MM_ASSERT_MSG(config_.quotes_per_datagram > 0, "need at least one quote per datagram");
}

Status UdpPublisher::publish_day(std::uint64_t session,
                                 const std::vector<md::Quote>& day) {
  auto sock = udp_connect(host_, port_);
  if (!sock) return sock.error();

  std::vector<std::uint8_t> datagram;
  FrameWriter writer;
  std::uint64_t seq = 0;
  std::size_t at = 0;
  while (at < day.size()) {
    const std::size_t n = std::min(config_.quotes_per_datagram, day.size() - at);
    start_datagram(datagram, session, seq);
    writer.clear();
    for (std::size_t i = 0; i < n; ++i) writer.quote(day[at + i]);
    datagram.insert(datagram.end(), writer.bytes().begin(), writer.bytes().end());
    finish_datagram(datagram, static_cast<std::uint16_t>(n));
    if (auto sent = udp_send(*sock, datagram.data(), datagram.size()); !sent)
      return sent.error();
    ++datagrams_sent_;
    seq += n;
    at += n;
  }
  // Final datagram: the end_of_day marker, in the same sequence space so the
  // receiver knows whether it arrived in order.
  start_datagram(datagram, session, seq);
  writer.clear();
  writer.end_of_day(day.size());
  datagram.insert(datagram.end(), writer.bytes().begin(), writer.bytes().end());
  finish_datagram(datagram, 1);
  if (auto sent = udp_send(*sock, datagram.data(), datagram.size()); !sent)
    return sent.error();
  ++datagrams_sent_;
  return {};
}

Status UdpReceiver::bind(const std::string& host, std::uint16_t port) {
  auto sock = udp_bind(host, port, &port_);
  if (!sock) return sock.error();
  sock_ = std::move(*sock);
  return {};
}

Expected<std::vector<md::Quote>> UdpReceiver::receive_day(
    std::chrono::milliseconds idle_timeout) {
  MM_ASSERT_MSG(sock_.valid(), "UdpReceiver: bind() first");
  std::vector<md::Quote> quotes;
  SequenceTracker tracker;
  std::uint8_t buf[2048];
  for (;;) {
    auto n = udp_recv(sock_, buf, sizeof(buf), idle_timeout);
    if (!n) return n.error();  // timeout or socket failure
    auto header = parse_datagram_header(buf, *n);
    if (!header) {
      ++stats_.parse_errors;
      continue;  // garbage datagram: drop, keep listening
    }
    ++stats_.datagrams;
    const std::uint64_t fresh = tracker.accept(header->first_seq, header->msg_count);
    if (fresh == 0) {
      ++stats_.stale_datagrams;
      continue;
    }
    // Parse the payload; deliver only the last `fresh` messages (the head of
    // an overlapping retransmit was already seen).
    FrameParser parser;
    parser.feed(buf + datagram_header_bytes, *n - datagram_header_bytes);
    FrameView v;
    std::uint64_t index = 0;
    const std::uint64_t skip = header->msg_count - fresh;
    bool done = false;
    while (parser.next(&v)) {
      ++stats_.frames;
      if (index++ < skip) continue;
      if (v.type == MsgType::quote) {
        md::Quote q;
        if (decode_quote(v, &q)) {
          quotes.push_back(q);
          ++stats_.quotes;
        } else {
          ++stats_.parse_errors;
        }
      } else if (v.type == MsgType::heartbeat) {
        ++stats_.heartbeats;
      } else if (v.type == MsgType::end_of_day) {
        std::uint64_t expected = 0;
        (void)decode_end_of_day(v, &expected);
        done = true;
      }
    }
    if (parser.failed()) ++stats_.parse_errors;
    stats_.gaps = tracker.gaps();
    stats_.gap_messages = tracker.gap_messages();
    if (done) return quotes;
  }
}

}  // namespace mm::wire
