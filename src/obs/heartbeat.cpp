#include "obs/heartbeat.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"  // now_ns

namespace mm::obs {

const char* liveness_name(Liveness state) {
  switch (state) {
    case Liveness::up: return "up";
    case Liveness::suspect: return "suspect";
    case Liveness::down: return "down";
    case Liveness::done: return "done";
  }
  return "unknown";
}

#if MM_OBS_ENABLED

HeartbeatBoard::HeartbeatBoard(int ranks) : ranks_(ranks) {
  MM_ASSERT_MSG(ranks > 0, "heartbeat board needs at least one rank");
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(ranks));
}

std::uint64_t HeartbeatBoard::seq(int rank) const {
  MM_ASSERT(rank >= 0 && rank < ranks_);
  return slots_[static_cast<std::size_t>(rank)].seq.load(std::memory_order_relaxed);
}

bool HeartbeatBoard::retired(int rank) const {
  MM_ASSERT(rank >= 0 && rank < ranks_);
  return slots_[static_cast<std::size_t>(rank)].retired.load(
             std::memory_order_relaxed) != 0;
}

void HeartbeatBoard::retire(int rank) {
  MM_ASSERT(rank >= 0 && rank < ranks_);
  slots_[static_cast<std::size_t>(rank)].retired.store(1, std::memory_order_relaxed);
}

std::atomic<std::uint64_t>* HeartbeatBoard::slot(int rank) {
  MM_ASSERT(rank >= 0 && rank < ranks_);
  return &slots_[static_cast<std::size_t>(rank)].seq;
}

Pulse& pulse_this_thread() noexcept {
  static thread_local Pulse pulse;
  return pulse;
}

PulseGuard::PulseGuard(HeartbeatBoard* board, int rank,
                       std::chrono::nanoseconds interval)
    : board_(board), rank_(rank) {
  if (board_ == nullptr) return;
  Pulse& pulse = pulse_this_thread();
  pulse.slot = board_->slot(rank_);
  pulse.next = 1;
  pulse.interval_ns = interval.count() > 0
                          ? interval.count()
                          : std::chrono::nanoseconds{std::chrono::milliseconds{100}}
                                .count();
  pulse.dead = false;
  pulse.beat();  // visible from the first scan on
}

PulseGuard::~PulseGuard() {
  if (board_ == nullptr) return;
  Pulse& pulse = pulse_this_thread();
  pulse.slot = nullptr;
  pulse.dead = false;
}

void PulseGuard::retire() {
  if (board_ == nullptr) return;
  if (pulse_this_thread().dead) return;  // killed ranks go silent, not retired
  board_->retire(rank_);
}

HeartbeatMonitor::HeartbeatMonitor(const HeartbeatBoard& board, Config config)
    : board_(board), config_(config) {
  MM_ASSERT_MSG(config_.interval.count() > 0, "heartbeat interval must be positive");
  MM_ASSERT_MSG(config_.dead_after >= config_.suspect_after,
                "dead_after must not precede suspect_after");
  health_.resize(static_cast<std::size_t>(board_.size()));
}

HeartbeatMonitor::~HeartbeatMonitor() { stop(); }

std::chrono::nanoseconds HeartbeatMonitor::scan_period() const {
  if (config_.scan_period.count() > 0) return config_.scan_period;
  return std::chrono::nanoseconds{config_.interval.count() / 8 + 1};
}

void HeartbeatMonitor::start() {
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] {
    const auto period = scan_period();
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      lock.unlock();
      scan(now_ns());
      lock.lock();
      stop_cv_.wait_for(lock, period, [this] { return stopping_; });
    }
  });
}

void HeartbeatMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HeartbeatMonitor::scan(std::int64_t now) {
  std::vector<std::pair<int, RankHealth>> deaths;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!seeded_) {
      for (auto& h : health_) h.last_seen_ns = now;
      seeded_ = true;
    }
    const double interval = static_cast<double>(config_.interval.count());
    for (int r = 0; r < board_.size(); ++r) {
      RankHealth& h = health_[static_cast<std::size_t>(r)];
      if (h.state == Liveness::done) continue;
      const std::uint64_t cur = board_.seq(r);
      if (cur != h.seq) {
        h.seq = cur;
        h.last_seen_ns = now;
        h.missed_scans = 0;
        if (h.state != Liveness::down) h.state = Liveness::up;
        continue;
      }
      if (board_.retired(r)) {
        // Retirement outranks silence: a finished rank is done, never down.
        h.state = Liveness::done;
        continue;
      }
      ++h.missed_scans;
      if (h.state == Liveness::down) continue;
      const double silent = static_cast<double>(now - h.last_seen_ns);
      if (silent > config_.dead_after * interval) {
        h.state = Liveness::down;
        h.detected_ns = now;
        if (on_dead) deaths.emplace_back(r, h);
      } else if (silent > config_.suspect_after * interval) {
        h.state = Liveness::suspect;
      }
    }
  }
  for (const auto& [rank, health] : deaths) on_dead(rank, health);
}

int HeartbeatMonitor::settle() {
  const bool self_drive = !thread_.joinable();
  const auto period = scan_period();
  // Beats have stopped (or keep coming) — either way every rank converges to
  // done/down/up within dead_after x interval; poll until no rank is in a
  // transient state, bounded by 2 x dead_after for safety.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds{static_cast<std::int64_t>(
          2.0 * config_.dead_after * static_cast<double>(config_.interval.count()))} +
      4 * period;
  while (true) {
    if (self_drive) scan(now_ns());
    bool transient = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& h : health_)
        if (h.state == Liveness::up || h.state == Liveness::suspect) transient = true;
    }
    if (!transient || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(period);
  }
  return static_cast<int>(dead_ranks().size());
}

RankHealth HeartbeatMonitor::health(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MM_ASSERT(rank >= 0 && rank < static_cast<int>(health_.size()));
  return health_[static_cast<std::size_t>(rank)];
}

std::vector<RankHealth> HeartbeatMonitor::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

std::vector<int> HeartbeatMonitor::dead_ranks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (std::size_t r = 0; r < health_.size(); ++r)
    if (health_[r].state == Liveness::down) out.push_back(static_cast<int>(r));
  return out;
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
