# Empty compiler generated dependencies file for bench_mpmini.
# This may be replaced when dependencies are built.
