#include "wire/parser.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"

namespace mm::wire {

FrameParser::FrameParser(std::size_t max_body)
    : max_frame_(1 + max_body) {
  // One max-size frame is the most that can ever straddle a feed boundary:
  // the carry fills only until the frame completes, then drains before the
  // next partial tail is copied in. Reserved once, never regrown.
  carry_.resize(frame_header_bytes + max_frame_);
}

void FrameParser::feed(const std::uint8_t* data, std::size_t size) {
  MM_ASSERT_MSG(cursor_ == size_, "FrameParser::feed: previous chunk not drained");
  data_ = data;
  size_ = size;
  cursor_ = 0;
}

bool FrameParser::header_ok(const std::uint8_t* p, std::size_t* frame_len) {
  const std::uint16_t len = load_u16(p);
  if (len == 0) {
    fail("zero-length frame");
    return false;
  }
  if (len > max_frame_) {
    fail(format("oversized frame: length %u exceeds limit %zu", unsigned{len},
                max_frame_));
    return false;
  }
  const std::uint8_t type = p[2];
  if (type < static_cast<std::uint8_t>(MsgType::hello) ||
      type > static_cast<std::uint8_t>(MsgType::end_of_day)) {
    fail(format("unknown message type %u", unsigned{type}));
    return false;
  }
  *frame_len = len;
  return true;
}

void FrameParser::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
}

bool FrameParser::next(FrameView* out) {
  if (failed_) return false;
  if (emitted_from_carry_) {
    // The view handed out last call pointed into the carry buffer; it is
    // dead now, so the carry can be reused.
    carry_size_ = 0;
    emitted_from_carry_ = false;
  }

  if (carry_size_ > 0) {
    // A frame is straddling a feed boundary. Top the carry up until the
    // header, then the whole frame, is present.
    std::size_t frame_len = 0;
    if (carry_size_ < frame_header_bytes) {
      const std::size_t want = frame_header_bytes - carry_size_;
      const std::size_t take = std::min(want, size_ - cursor_);
      std::memcpy(carry_.data() + carry_size_, data_ + cursor_, take);
      carry_size_ += take;
      cursor_ += take;
      if (carry_size_ < frame_header_bytes) return false;  // still starved
    }
    if (!header_ok(carry_.data(), &frame_len)) return false;
    // The length prefix already counts the type byte, so the frame occupies
    // the two prefix bytes plus frame_len on the wire.
    const std::size_t total = (frame_header_bytes - 1) + frame_len;
    if (carry_size_ < total) {
      const std::size_t want = total - carry_size_;
      const std::size_t take = std::min(want, size_ - cursor_);
      std::memcpy(carry_.data() + carry_size_, data_ + cursor_, take);
      carry_size_ += take;
      cursor_ += take;
      if (carry_size_ < total) return false;
    }
    out->type = static_cast<MsgType>(carry_[2]);
    out->body = carry_.data() + frame_header_bytes;
    out->size = frame_len - 1;
    emitted_from_carry_ = true;
    ++frames_;
    bytes_ += total;
    return true;
  }

  // Common case: parse straight out of the fed buffer, zero copies.
  const std::size_t avail = size_ - cursor_;
  if (avail < frame_header_bytes) {
    if (avail > 0) {
      std::memcpy(carry_.data(), data_ + cursor_, avail);
      carry_size_ = avail;
      cursor_ = size_;
    }
    return false;
  }
  const std::uint8_t* p = data_ + cursor_;
  std::size_t frame_len = 0;
  if (!header_ok(p, &frame_len)) return false;
  const std::size_t total = (frame_header_bytes - 1) + frame_len;
  if (avail < total) {
    std::memcpy(carry_.data(), p, avail);
    carry_size_ = avail;
    cursor_ = size_;
    return false;
  }
  out->type = static_cast<MsgType>(p[2]);
  out->body = p + frame_header_bytes;
  out->size = frame_len - 1;
  cursor_ += total;
  ++frames_;
  bytes_ += total;
  return true;
}

bool decode_quote(const FrameView& v, md::Quote* out) {
  if (v.type != MsgType::quote || v.size != quote_body_bytes) return false;
  const std::uint8_t* p = v.body;
  out->ts_ms = static_cast<md::TimeMs>(load_u64(p));
  out->symbol = load_u32(p + 8);
  out->bid = load_f64(p + 12);
  out->ask = load_f64(p + 20);
  out->bid_size = static_cast<std::int32_t>(load_u32(p + 28));
  out->ask_size = static_cast<std::int32_t>(load_u32(p + 32));
  return true;
}

bool decode_heartbeat(const FrameView& v, std::uint64_t* counter) {
  if (v.type != MsgType::heartbeat || v.size != 8) return false;
  *counter = load_u64(v.body);
  return true;
}

bool decode_end_of_day(const FrameView& v, std::uint64_t* quote_count) {
  if (v.type != MsgType::end_of_day || v.size != 8) return false;
  *quote_count = load_u64(v.body);
  return true;
}

Expected<Hello> decode_hello(const FrameView& v) {
  if (v.type != MsgType::hello)
    return Error(Errc::parse_error, "wire: frame is not a hello");
  if (v.size < 18)
    return Error(Errc::parse_error, "wire: hello body truncated");
  const std::uint8_t* p = v.body;
  if (load_u32(p) != magic)
    return Error(Errc::parse_error, "wire: bad magic in hello");
  const std::uint16_t ver = load_u16(p + 4);
  if (ver != version)
    return Error(Errc::parse_error,
                 format("wire: unsupported version %u", unsigned{ver}));
  Hello h;
  h.flags = load_u16(p + 6);
  h.session = load_u64(p + 8);
  const std::uint16_t key_len = load_u16(p + 16);
  if (18 + std::size_t{key_len} != v.size)
    return Error(Errc::parse_error, "wire: hello key length mismatch");
  h.key.assign(reinterpret_cast<const char*>(p + 18), key_len);
  return h;
}

Expected<DatagramHeader> parse_datagram_header(const std::uint8_t* data,
                                               std::size_t size) {
  if (size < datagram_header_bytes)
    return Error(Errc::parse_error, "wire: datagram shorter than its header");
  if (load_u32(data) != magic)
    return Error(Errc::parse_error, "wire: bad datagram magic");
  const std::uint16_t ver = load_u16(data + 4);
  if (ver != version)
    return Error(Errc::parse_error,
                 format("wire: unsupported datagram version %u", unsigned{ver}));
  DatagramHeader h;
  h.msg_count = load_u16(data + 6);
  h.session = load_u64(data + 8);
  h.first_seq = load_u64(data + 16);
  return h;
}

}  // namespace mm::wire
