// §V future-studies reproduction: the inferential tests the paper proposes
// for its treatment comparisons — paired t and Wilcoxon signed-rank over the
// per-pair samples, for all three performance measures.
#include <cstdio>

#include "core/significance.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_significance",
              "Paired significance tests between correlation treatments");
  auto& alpha = cli.add_double("alpha", 0.05, "significance level");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result = mm::bench::run_with_banner(
      cfg, "Section V follow-up — treatment significance tests");
  std::printf("%s", mm::core::render_significance_report(result, alpha).c_str());
  return 0;
}
