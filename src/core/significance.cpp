#include "core/significance.hpp"

#include "common/strings.hpp"

namespace mm::core {

std::array<TreatmentComparison, 3> compare_treatments(const ExperimentResult& result,
                                                      Measure measure) {
  // The paper's column order: Maronna, Pearson, Combined.
  constexpr stats::Ctype order[] = {stats::Ctype::maronna, stats::Ctype::pearson,
                                    stats::Ctype::combined};
  std::array<TreatmentComparison, 3> out;
  std::size_t slot = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      TreatmentComparison cmp;
      cmp.a = order[i];
      cmp.b = order[j];
      cmp.measure = measure;
      const auto& xa = sample_of(result, measure, static_cast<std::size_t>(order[i]));
      const auto& xb = sample_of(result, measure, static_cast<std::size_t>(order[j]));
      cmp.t_test = stats::paired_t_test(xa, xb);
      cmp.wilcoxon = stats::wilcoxon_signed_rank(xa, xb);
      cmp.bootstrap = stats::bootstrap_mean_diff_ci(xa, xb, /*resamples=*/1000);
      out[slot++] = cmp;
    }
  }
  return out;
}

std::string render_significance_report(const ExperimentResult& result, double alpha) {
  std::string out = format(
      "treatment significance (paired tests over %zu pairs, alpha = %.2f)\n",
      result.pair_count, alpha);
  for (const Measure measure : {Measure::monthly_return, Measure::max_daily_drawdown,
                                Measure::win_loss}) {
    out += format("\n%s:\n", measure_name(measure));
    out += format("  %-22s %12s %10s %10s %10s %23s %6s\n", "comparison",
                  "mean diff", "t-stat", "t p-val", "wilcoxon p", "bootstrap 95% CI",
                  "sig?");
    for (const auto& cmp : compare_treatments(result, measure)) {
      const bool significant = cmp.t_test.significant(alpha) &&
                               cmp.wilcoxon.significant(alpha) &&
                               cmp.bootstrap.excludes_zero();
      out += format("  %-10s vs %-8s %12.5f %10.3f %10.4f %10.4f [%9.5f, %9.5f] %6s\n",
                    stats::to_string(cmp.a), stats::to_string(cmp.b),
                    cmp.t_test.effect, cmp.t_test.statistic, cmp.t_test.p_value,
                    cmp.wilcoxon.p_value, cmp.bootstrap.lo, cmp.bootstrap.hi,
                    significant ? "ALL" : "-");
    }
  }
  out += "\npaper context: §V stresses its table comparisons are not yet tested\n"
         "for significance; this report supplies the paired t and Wilcoxon\n"
         "signed-rank tests it proposes plus a percentile-bootstrap CI on the\n"
         "mean difference (flagged only when all three agree).\n";
  return out;
}

}  // namespace mm::core
