// Tests for the trading calendar: date arithmetic, session intervals, and the
// paper's March 2008 trading-day structure.
#include <gtest/gtest.h>

#include "marketdata/calendar.hpp"

namespace mm::md {
namespace {

TEST(Date, Validity) {
  EXPECT_TRUE((Date{2008, 3, 3}).valid());
  EXPECT_TRUE((Date{2008, 2, 29}).valid());   // 2008 is a leap year
  EXPECT_FALSE((Date{2007, 2, 29}).valid());
  EXPECT_FALSE((Date{2008, 13, 1}).valid());
  EXPECT_FALSE((Date{2008, 4, 31}).valid());
  EXPECT_FALSE((Date{2008, 1, 0}).valid());
}

TEST(Date, Weekday) {
  EXPECT_EQ((Date{2008, 3, 3}).weekday(), 0);   // Monday
  EXPECT_EQ((Date{2008, 3, 7}).weekday(), 4);   // Friday
  EXPECT_EQ((Date{2008, 3, 8}).weekday(), 5);   // Saturday
  EXPECT_EQ((Date{2008, 3, 9}).weekday(), 6);   // Sunday
  EXPECT_TRUE((Date{2008, 3, 8}).is_weekend());
  EXPECT_FALSE((Date{2008, 3, 7}).is_weekend());
}

TEST(Date, NextDayRollsMonthAndYear) {
  EXPECT_EQ((Date{2008, 3, 31}).next_day(), (Date{2008, 4, 1}));
  EXPECT_EQ((Date{2008, 12, 31}).next_day(), (Date{2009, 1, 1}));
  EXPECT_EQ((Date{2008, 2, 28}).next_day(), (Date{2008, 2, 29}));
  EXPECT_EQ((Date{2008, 2, 29}).next_day(), (Date{2008, 3, 1}));
}

TEST(Date, Iso) { EXPECT_EQ((Date{2008, 3, 3}).iso(), "2008-03-03"); }

TEST(Date, NextBusinessDaySkipsWeekendsAndHolidays) {
  // Friday 2008-03-07 -> Monday 2008-03-10.
  EXPECT_EQ((Date{2008, 3, 7}).next_business_day(), (Date{2008, 3, 10}));
  // Thursday 2008-03-20 -> Monday 2008-03-24 (Good Friday 3/21 is a holiday).
  EXPECT_EQ((Date{2008, 3, 20}).next_business_day(), (Date{2008, 3, 24}));
}

TEST(BusinessDays, March2008HasTwentyTradingDays) {
  // The paper's dataset: "one month (March 2008) which consists of 20 trading
  // days". Verify our calendar agrees.
  const auto days = business_days(Date{2008, 3, 1}, 20);
  ASSERT_EQ(days.size(), 20u);
  EXPECT_EQ(days.front(), (Date{2008, 3, 3}));
  EXPECT_EQ(days.back(), (Date{2008, 3, 31}));  // 20th trading day is Mar 31
  for (const auto& d : days) {
    EXPECT_FALSE(d.is_weekend());
    EXPECT_FALSE(is_holiday(d));
  }
}

TEST(Session, DefaultsMatchNyse) {
  Session s;
  EXPECT_EQ(s.duration_seconds(), 23400);  // the paper's 23400-second day
}

TEST(Session, IntervalCountMatchesPaperExample) {
  // "if ∆s = 30 seconds, then there will be smax = 23400/30 = 780 intervals".
  Session s;
  EXPECT_EQ(s.interval_count(30), 780);
  EXPECT_EQ(s.interval_count(15), 1560);
  EXPECT_EQ(s.interval_count(60), 390);
}

TEST(Session, IntervalOfBoundaries) {
  Session s;
  const TimeMs open = s.open_ms();
  EXPECT_EQ(s.interval_of(open, 30), 0);
  EXPECT_EQ(s.interval_of(open + 29'999, 30), 0);
  EXPECT_EQ(s.interval_of(open + 30'000, 30), 1);
  EXPECT_EQ(s.interval_of(open - 1, 30), -1);         // pre-open
  EXPECT_EQ(s.interval_of(s.close_ms(), 30), -1);     // at close
  EXPECT_EQ(s.interval_of(s.close_ms() - 1, 30), 779);
}

TEST(Session, IntervalStartEndRoundTrip) {
  Session s;
  for (std::int64_t k : {0, 1, 100, 779}) {
    const auto start = s.interval_start(k, 30);
    const auto end = s.interval_end(k, 30);
    EXPECT_EQ(end - start, 30 * ms_per_second);
    EXPECT_EQ(s.interval_of(start, 30), k);
    EXPECT_EQ(s.interval_of(end - 1, 30), k);
  }
}

TEST(Session, ContainsSessionTimes) {
  Session s;
  EXPECT_TRUE(s.contains(s.open_ms()));
  EXPECT_FALSE(s.contains(s.close_ms()));
  EXPECT_FALSE(s.contains(0));
}

class IntervalSweep : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(DeltaS, IntervalSweep,
                         ::testing::Values<std::int64_t>(1, 5, 15, 30, 60, 300));

TEST_P(IntervalSweep, EveryInSessionTimestampMapsToExactlyOneInterval) {
  Session s;
  const std::int64_t delta = GetParam();
  const std::int64_t smax = s.interval_count(delta);
  EXPECT_EQ(smax, 23400 / delta);
  // Sample times across the session; each must land in a valid interval whose
  // [start, end) brackets it.
  for (TimeMs t = s.open_ms(); t < s.close_ms(); t += 977 * 7) {
    const auto k = s.interval_of(t, delta);
    if (k < 0) {
      // Only possible in the truncated tail when delta doesn't divide 23400.
      EXPECT_GE(t, s.interval_end(smax - 1, delta));
      continue;
    }
    EXPECT_GE(t, s.interval_start(k, delta));
    EXPECT_LT(t, s.interval_end(k, delta));
  }
}

}  // namespace
}  // namespace mm::md
