// Scalar kernel variants — the canonical arithmetic.
//
// Reductions are written in lane form: four independent accumulators
// combined as (l0 + l2) + (l1 + l3), remainder appended sequentially after
// the combine. That is exactly the summation order of the AVX2 variants
// (vertical adds into a 4-lane register, one horizontal reduction, scalar
// tail), so the two produce bit-identical results. This TU is compiled with
// -ffp-contract=off (see src/stats/CMakeLists.txt): a contracted fused
// multiply-add would round differently from the AVX2 mul+add sequences and
// silently break that equivalence.
#include "stats/simd_detail.hpp"

#include <algorithm>
#include <cmath>

namespace mm::stats::simd {
namespace {

PairSums pair_sums_scalar(const double* x, const double* y, std::size_t n) {
  double ax[4] = {0.0, 0.0, 0.0, 0.0};
  double ay[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      ax[l] += x[i + l];
      ay[l] += y[i + l];
    }
  }
  PairSums out;
  out.sx = (ax[0] + ax[2]) + (ax[1] + ax[3]);
  out.sy = (ay[0] + ay[2]) + (ay[1] + ay[3]);
  for (std::size_t i = n4; i < n; ++i) {
    out.sx += x[i];
    out.sy += y[i];
  }
  return out;
}

CenteredSums centered_sums_scalar(const double* x, const double* y, std::size_t n,
                                  double mx, double my) {
  double axx[4] = {0.0, 0.0, 0.0, 0.0};
  double ayy[4] = {0.0, 0.0, 0.0, 0.0};
  double axy[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double dx = x[i + l] - mx;
      const double dy = y[i + l] - my;
      axx[l] += dx * dx;
      ayy[l] += dy * dy;
      axy[l] += dx * dy;
    }
  }
  CenteredSums out;
  out.sxx = (axx[0] + axx[2]) + (axx[1] + axx[3]);
  out.syy = (ayy[0] + ayy[2]) + (ayy[1] + ayy[3]);
  out.sxy = (axy[0] + axy[2]) + (axy[1] + axy[3]);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    out.sxx += dx * dx;
    out.syy += dy * dy;
    out.sxy += dx * dy;
  }
  return out;
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4)
    for (std::size_t l = 0; l < 4; ++l) acc[l] += x[i + l] * y[i + l];
  double s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (std::size_t i = n4; i < n; ++i) s += x[i] * y[i];
  return s;
}

void cross_insert_scalar(double* row, const double* r, double xi, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) row[k] += xi * r[k];
}

void cross_evict_insert_scalar(double* row, const double* r, const double* old_col,
                               double xi, double oi, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) row[k] += xi * r[k] - oi * old_col[k];
}

void pearson_row_scalar(double* orow, const double* crow, const double* sums_j,
                        const double* vars_j, const double* degen_j, double sum_i,
                        double vi, double count, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    double r = 0.0;
    if (degen_j[k] == 0.0) {
      const double cov = crow[k] - sum_i * sums_j[k] / count;
      const double denom = std::sqrt(vi * vars_j[k]);
      if (denom > 0.0 && std::isfinite(denom))
        r = std::clamp(cov / denom, -1.0, 1.0);
    }
    orow[k] = r;
  }
}

WeightedSums maronna_weighted_sums_scalar(const double* x, const double* y,
                                          std::size_t n, double mx, double my,
                                          double ixx, double ixy, double iyy,
                                          double k2) {
  double asw[4] = {0.0, 0.0, 0.0, 0.0};
  double aswx[4] = {0.0, 0.0, 0.0, 0.0};
  double aswy[4] = {0.0, 0.0, 0.0, 0.0};
  double asxx[4] = {0.0, 0.0, 0.0, 0.0};
  double asxy[4] = {0.0, 0.0, 0.0, 0.0};
  double asyy[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double dx = x[i + l] - mx;
      const double dy = y[i + l] - my;
      const double d2 = dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy;
      const double w = d2 <= k2 ? 1.0 : k2 / d2;
      asw[l] += w;
      aswx[l] += w * x[i + l];
      aswy[l] += w * y[i + l];
      asxx[l] += w * dx * dx;
      asxy[l] += w * dx * dy;
      asyy[l] += w * dy * dy;
    }
  }
  WeightedSums out;
  out.sw = (asw[0] + asw[2]) + (asw[1] + asw[3]);
  out.swx = (aswx[0] + aswx[2]) + (aswx[1] + aswx[3]);
  out.swy = (aswy[0] + aswy[2]) + (aswy[1] + aswy[3]);
  out.sxx = (asxx[0] + asxx[2]) + (asxx[1] + asxx[3]);
  out.sxy = (asxy[0] + asxy[2]) + (asxy[1] + asxy[3]);
  out.syy = (asyy[0] + asyy[2]) + (asyy[1] + asyy[3]);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    const double d2 = dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy;
    const double w = d2 <= k2 ? 1.0 : k2 / d2;
    out.sw += w;
    out.swx += w * x[i];
    out.swy += w * y[i];
    out.sxx += w * dx * dx;
    out.sxy += w * dx * dy;
    out.syy += w * dy * dy;
  }
  return out;
}

}  // namespace

namespace detail {

const KernelTable& scalar_table() {
  static const KernelTable table = {
      pair_sums_scalar,      centered_sums_scalar,
      dot_scalar,            cross_insert_scalar,
      cross_evict_insert_scalar, pearson_row_scalar,
      maronna_weighted_sums_scalar,
  };
  return table;
}

}  // namespace detail
}  // namespace mm::stats::simd
