// Backtest-as-a-service: the multi-tenant sweep front end.
//
// One BacktestService owns the shared planes every tenant's jobs ride on:
//
//   DayCache    — each (universe, seed, day) quote vector loaded once,
//                 replayed in place by every pipeline (PipelineConfig::day);
//   CorrStore   — each (day, universe, ∆s, M, estimator) correlation stream
//                 computed once, replayed bit-identically by later units;
//   JobQueue +  — per-tenant fair-share admission onto a bounded worker
//   Scheduler     pool; each worker streams one unit (= one run_pipeline)
//                 at a time, so `workers` bounds peak rank count;
//   Registry +  — per-tenant labeled service counters next to the engine's
//   MetricsServer own metrics, scraped from GET /metrics.
//
// REST surface (loopback only, see obs/http.hpp):
//   POST   /jobs              submit a JobSpec, 201 -> {"id": ...}
//   GET    /jobs              list job ids and states
//   GET    /jobs/{id}         status (state, units done/total)
//   GET    /jobs/{id}/result  result JSON (409 until the job is done)
//   DELETE /jobs/{id}         cancel (queued: immediate; running: at the
//                             next unit boundary)
//   GET    /metrics           Prometheus text (svc.*, corr_store.*,
//                             day_cache.* and engine families)
//   GET    /healthz           "ok"
//
// Determinism: a job's result depends only on its spec — never on cache
// state or tenant interleaving — because cache hits replay the exact bytes
// a cold run would compute (see stats/corr_store.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "marketdata/day_cache.hpp"
#include "marketdata/symbols.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "stats/corr_store.hpp"
#include "svc/job.hpp"
#include "svc/queue.hpp"
#include "svc/scheduler.hpp"

namespace mm::svc {

struct ServiceConfig {
  // Worker pool size: jobs running concurrently (each runs one pipeline at
  // a time).
  int workers = 2;
  // HTTP port (0 = ephemeral; BacktestService::port() after start()).
  std::uint16_t port = 0;
  // Byte budgets for the shared caches (0 = unbounded).
  std::size_t day_cache_bytes = 0;
  std::size_t corr_store_bytes = 0;
  // Pipeline channel capacity and collector batch size (test knobs).
  int channel_capacity = 64;
  std::size_t batch_size = 256;
  // Synthetic generator quote rate override (0 = GeneratorConfig default).
  // Service-global, so it never splits cache keys.
  double quote_rate = 0.0;
  // Job-scoped causal traces: every job gets a trace_id at submit and its own
  // TraceSink; units run with the job's context so cross-rank flow events
  // stitch the whole job, served from GET /jobs/{id}/trace once terminal.
  // A no-op (empty traces, trace_id 0) when MM_OBS_ENABLED=OFF.
  bool job_traces = true;
  // Per-rank event capacity of each job's trace rings (64 B/event). The
  // default bounds a job's trace at 256 KiB per rank; deep sweeps drop the
  // newest events past that (TraceSink::total_dropped says how many).
  std::size_t trace_ring_events = 1u << 12;
  // Per-tenant queue-depth bound (0 = unbounded): a POST /jobs that would
  // put a tenant past this many QUEUED jobs is rejected with 429 and counted
  // in svc.jobs_rejected{tenant}. Running jobs don't count — the worker pool
  // already bounds concurrency; this bounds how far one tenant can backlog
  // the shared queue.
  std::size_t tenant_queue_limit = 0;
  // Day source over the wire: when feed_port != 0 the DayCache loads days
  // from a wire::TcpFeedServer at feed_host:feed_port (the day key is the
  // subscription key) instead of generating them in-process. Lets one feed
  // process serve many service replicas the identical bytes.
  std::string feed_host = "127.0.0.1";
  std::uint16_t feed_port = 0;
};

class BacktestService {
 public:
  explicit BacktestService(ServiceConfig config = {});
  ~BacktestService();

  // Bind the HTTP listener and start the worker pool.
  Status start();
  // Deterministic shutdown: stops the listener, cancels queued + in-flight
  // jobs at unit boundaries, joins every worker (see Scheduler::stop()).
  void stop();

  std::uint16_t port() const { return server_.port(); }

  // --- programmatic surface (what the HTTP handlers call) -----------------
  // Validate + enqueue; returns the job id.
  Expected<std::string> submit(JobSpec spec);
  std::shared_ptr<Job> find(const std::string& id) const;
  // Block until the job reaches a terminal state (done/failed/cancelled).
  // False on timeout (0 = wait forever).
  bool wait(const std::string& id, std::int64_t timeout_ms = 0) const;
  // Cancel queued or running; false when unknown or already terminal.
  bool cancel(const std::string& id);
  std::vector<std::shared_ptr<Job>> jobs() const;

  // Shared-plane introspection for tests and benchmarks.
  obs::Registry& registry() { return registry_; }
  stats::CorrStore& corr_store() { return corr_store_; }
  md::DayCache& day_cache() { return day_cache_; }
  std::string render_metrics() const;

  BacktestService(const BacktestService&) = delete;
  BacktestService& operator=(const BacktestService&) = delete;

 private:
  void run_job(const std::shared_ptr<Job>& job);
  std::shared_ptr<const md::Universe> universe_for(std::size_t symbols);
  void wire_routes();

  const ServiceConfig config_;
  obs::Registry registry_;
  md::DayCache day_cache_;
  stats::CorrStore corr_store_;
  JobQueue queue_;
  Scheduler scheduler_;
  obs::MetricsServer server_;

  mutable std::mutex jobs_mutex_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 0;

  std::mutex universes_mutex_;
  std::map<std::size_t, std::shared_ptr<const md::Universe>> universes_;

  bool started_ = false;
};

}  // namespace mm::svc
