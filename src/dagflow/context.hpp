// Per-node execution context: the API a dagflow component programs against.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mpmini/comm.hpp"

namespace mm::dag {

struct Edge;

// A message received on one of the node's input ports.
struct InMessage {
  int port = 0;
  std::vector<std::uint8_t> bytes;
};

class Context {
 public:
  // Built by Graph::run; user code only consumes it. `leader_ranks` maps a
  // node id to the world rank that owns its edges (identity when every node
  // is single-rank; group nodes put their leader there).
  Context(mpi::Comm& comm, int node, std::string name, const std::vector<Edge>& edges,
          const std::vector<int>& leader_ranks);

  const std::string& name() const { return name_; }
  int node() const { return node_; }
  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }

  // Next message from any input port, in arrival order. Returns nullopt once
  // every input has reached end-of-stream. Consuming a message returns one
  // flow-control credit to its sender.
  std::optional<InMessage> recv();

  // Send on an output port. Blocks while the edge is at capacity (credit
  // exhausted), servicing incoming data/credits meanwhile.
  void emit(int port, std::vector<std::uint8_t> bytes);

  // Close one output port early (EOS). Idempotent. All still-open outputs
  // are closed automatically when the node function returns.
  void close_output(int port);
  void close_all_outputs();

  // Totals for throughput reporting.
  std::uint64_t messages_in() const { return messages_in_; }
  std::uint64_t messages_out() const { return messages_out_; }

 private:
  struct InputEdge {
    int edge_id;
    int peer_node;  // rank of the producer
    int port;
    bool open = true;
  };
  struct OutputEdge {
    int edge_id;
    int peer_node;  // rank of the consumer
    int port;
    int credits;
    bool open = true;
  };

  // Block for one incoming transport message and dispatch it (data -> queue,
  // EOS -> mark closed, credit -> top up).
  void pump();
  bool all_inputs_closed() const;

  static int data_tag(int edge_id) { return 2 * edge_id; }
  static int credit_tag(int edge_id) { return 2 * edge_id + 1; }

  mpi::Comm& comm_;
  int node_;
  std::string name_;
  std::vector<InputEdge> inputs_;
  std::vector<OutputEdge> outputs_;
  std::deque<InMessage> ready_;  // data already pumped but not yet recv()ed
  std::deque<int> pending_credits_;  // edge ids whose credit we owe on recv()
  std::uint64_t messages_in_ = 0;
  std::uint64_t messages_out_ = 0;
};

}  // namespace mm::dag
