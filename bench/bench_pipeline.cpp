// Microbenchmarks for the dagflow engine and the Fig. 1 pipeline: channel
// throughput, backpressure cost, and end-to-end quotes/second for varying
// strategy-worker counts.
#include <benchmark/benchmark.h>

#include "dagflow/context.hpp"
#include "dagflow/graph.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "mpmini/serde.hpp"

namespace {

void BM_ChannelThroughput(benchmark::State& state) {
  const auto capacity = static_cast<int>(state.range(0));
  constexpr int messages = 5000;
  for (auto _ : state) {
    mm::dag::Graph g;
    const int src = g.add_node("src", [&](mm::dag::Context& ctx) {
      mm::mpi::Packer p;
      p.put<int>(42);
      const auto payload = p.take();
      for (int i = 0; i < messages; ++i) ctx.emit(0, payload);
    });
    const int sink = g.add_node("sink", [](mm::dag::Context& ctx) {
      while (ctx.recv()) {
      }
    });
    g.connect(src, 0, sink, 0, capacity);
    g.run();
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_ChannelThroughput)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_ChainDepth(benchmark::State& state) {
  // Relay cost through a deeper DAG.
  const auto depth = static_cast<int>(state.range(0));
  constexpr int messages = 2000;
  for (auto _ : state) {
    mm::dag::Graph g;
    const int src = g.add_node("src", [&](mm::dag::Context& ctx) {
      for (int i = 0; i < messages; ++i) ctx.emit(0, {1, 2, 3, 4});
    });
    int prev = src;
    for (int d = 0; d < depth; ++d) {
      const int relay = g.add_node("relay", [](mm::dag::Context& ctx) {
        while (auto msg = ctx.recv()) ctx.emit(0, std::move(msg->bytes));
      });
      g.connect(prev, 0, relay, 0);
      prev = relay;
    }
    const int sink = g.add_node("sink", [](mm::dag::Context& ctx) {
      while (ctx.recv()) {
      }
    });
    g.connect(prev, 0, sink, 0);
    g.run();
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_ChainDepth)->Arg(1)->Arg(3)->Arg(6);

void BM_PipelineWorkers(benchmark::State& state) {
  // End-to-end Fig. 1 pipeline for 1..8 strategy workers on a reduced day.
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t symbols = 8;
  const auto universe = mm::md::make_universe(symbols);
  mm::md::GeneratorConfig gen;
  gen.quote_rate = 0.1;
  const mm::md::SyntheticDay day(universe, gen, 0);

  mm::engine::PipelineConfig cfg;
  cfg.symbols = symbols;
  const auto all = mm::core::ParamGrid().all();
  for (const auto& p : all) {
    if (p.corr_window != 100) continue;
    cfg.strategies.push_back(p);
    if (cfg.strategies.size() == workers) break;
  }

  std::uint64_t quotes = 0;
  for (auto _ : state) {
    const auto result = mm::engine::run_pipeline(cfg, universe, day.quotes());
    benchmark::DoNotOptimize(result.master.trades);
    quotes += result.quotes_in;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(quotes));
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_PipelineWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineCorrReplicas(benchmark::State& state) {
  // The parallel correlation engine group across rank counts (robust
  // estimation dominates, so on multi-core hosts this is the scaling axis).
  const auto replicas = static_cast<int>(state.range(0));
  constexpr std::size_t symbols = 8;
  const auto universe = mm::md::make_universe(symbols);
  mm::md::GeneratorConfig gen;
  gen.quote_rate = 0.1;
  const mm::md::SyntheticDay day(universe, gen, 0);

  mm::engine::PipelineConfig cfg;
  cfg.symbols = symbols;
  cfg.correlation_replicas = replicas;
  auto params = mm::core::ParamGrid::base();
  params.ctype = mm::stats::Ctype::maronna;  // the expensive estimator
  cfg.strategies = {params};

  for (auto _ : state) {
    const auto result = mm::engine::run_pipeline(cfg, universe, day.quotes());
    benchmark::DoNotOptimize(result.master.trades);
  }
  state.counters["corr_ranks"] = static_cast<double>(replicas);
}
BENCHMARK(BM_PipelineCorrReplicas)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
