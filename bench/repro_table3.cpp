// Table III reproduction: average cumulative monthly returns per correlation
// type (mean/median/stddev/Sharpe/skewness/kurtosis over the per-pair,
// level-averaged samples).
#include <cstdio>

#include "core/report.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_table3",
              "Reproduce Table III: average cumulative monthly returns");
  const auto cfg = mm::bench::build_config(cli, argc, argv);
  const auto result = mm::bench::run_with_banner(
      cfg, "Table III — average cumulative monthly returns (r-bar + 1)");

  using mm::core::Measure;
  std::printf("%s\n", mm::core::render_table(result, Measure::monthly_return,
                                             /*include_sharpe=*/true,
                                             /*as_percent=*/false)
                          .c_str());
  std::printf("%s\n", mm::core::paper_reference(Measure::monthly_return).c_str());
  return 0;
}
