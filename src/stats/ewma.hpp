// Exponentially weighted moving-average statistics: the RiskMetrics-style
// online covariance/correlation estimator — a further "correlation measure"
// in the §VI sense, and a useful contrast to the sliding rectangular window:
// EWMA never drops observations abruptly, so its correlation series is
// smoother but reacts to breaks with a lag set by lambda.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace mm::stats {

// Online EWMA mean/variance of one stream.
class EwmaVariance {
 public:
  // lambda in (0, 1): weight retained per step (RiskMetrics daily = 0.94).
  explicit EwmaVariance(double lambda) : lambda_(lambda) {
    MM_ASSERT_MSG(lambda > 0.0 && lambda < 1.0, "lambda must be in (0,1)");
  }

  void push(double x) {
    if (count_ == 0) {
      mean_ = x;
      var_ = 0.0;
    } else {
      const double prev_mean = mean_;
      mean_ = lambda_ * mean_ + (1.0 - lambda_) * x;
      var_ = lambda_ * var_ + (1.0 - lambda_) * (x - prev_mean) * (x - mean_);
    }
    ++count_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return var_ > 0.0 ? var_ : 0.0; }

 private:
  double lambda_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t count_ = 0;
};

// Online EWMA correlation of a pair of streams.
class EwmaCorrelation {
 public:
  explicit EwmaCorrelation(double lambda) : lambda_(lambda) {
    MM_ASSERT_MSG(lambda > 0.0 && lambda < 1.0, "lambda must be in (0,1)");
  }

  void push(double x, double y) {
    if (count_ == 0) {
      mean_x_ = x;
      mean_y_ = y;
      var_x_ = var_y_ = cov_ = 0.0;
    } else {
      const double prev_x = mean_x_;
      const double prev_y = mean_y_;
      mean_x_ = lambda_ * mean_x_ + (1.0 - lambda_) * x;
      mean_y_ = lambda_ * mean_y_ + (1.0 - lambda_) * y;
      var_x_ = lambda_ * var_x_ + (1.0 - lambda_) * (x - prev_x) * (x - mean_x_);
      var_y_ = lambda_ * var_y_ + (1.0 - lambda_) * (y - prev_y) * (y - mean_y_);
      cov_ = lambda_ * cov_ + (1.0 - lambda_) * (x - prev_x) * (y - mean_y_);
    }
    ++count_;
  }

  std::size_t count() const { return count_; }
  bool ready() const { return count_ >= 2; }

  double correlation() const {
    MM_ASSERT_MSG(ready(), "EWMA correlation before two observations");
    const double denom = std::sqrt(var_x_ * var_y_);
    if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
    const double r = cov_ / denom;
    return r < -1.0 ? -1.0 : (r > 1.0 ? 1.0 : r);
  }

  // Effective window length: 1 / (1 - lambda) observations carry ~63% of the
  // weight — the knob comparable to the paper's M.
  double effective_window() const { return 1.0 / (1.0 - lambda_); }

 private:
  double lambda_;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double var_x_ = 0.0, var_y_ = 0.0, cov_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace mm::stats
