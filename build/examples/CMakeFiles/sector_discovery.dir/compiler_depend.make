# Empty compiler generated dependencies file for sector_discovery.
# This may be replaced when dependencies are built.
