// §VI future-work reproduction: implementation shortfall.
//
// Runs the Fig. 1 pipeline on one synthetic day to collect the decision-price
// order log, then re-executes it against the cleaned quote stream under
// increasingly realistic friction models, reporting the shortfall and the
// haircut it takes out of the frictionless P&L — quantifying the paper's
// "transaction costs, moving the market and lost opportunity".
#include <cstdio>

#include "common/cli.hpp"
#include "engine/execution.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  using namespace mm;
  Cli cli("repro_future_shortfall",
          "Implementation shortfall under friction models (future work)");
  auto& symbols = cli.add_int("symbols", 10, "universe size");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(symbols);
  const auto universe = md::make_universe(n);
  md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = 0.5;
  const md::SyntheticDay day(universe, gen, 0);

  engine::PipelineConfig cfg;
  cfg.symbols = n;
  auto params = core::ParamGrid::base();
  params.divergence = 0.0005;
  cfg.strategies = {params};
  const auto pipeline = engine::run_pipeline(cfg, universe, day.quotes());

  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto cleaned = cleaner.clean(day.quotes());

  std::printf("implementation shortfall — %llu orders from one pipeline day "
              "(frictionless pnl $%.2f)\n\n",
              static_cast<unsigned long long>(pipeline.master.orders),
              pipeline.master.total_pnl);
  std::printf("  %-34s %8s %6s %12s %10s %12s\n", "friction model", "filled", "lost",
              "shortfall $", "bps", "pnl after");

  struct Model {
    const char* name;
    engine::ExecutionConfig cfg;
  };
  std::vector<Model> models;
  {
    engine::ExecutionConfig c;
    c.cross_spread = false;
    models.push_back({"frictionless (BAM fills)", c});
  }
  {
    engine::ExecutionConfig c;
    models.push_back({"cross the spread", c});
  }
  {
    engine::ExecutionConfig c;
    c.latency_ms = 5'000;
    models.push_back({"spread + 5 s latency", c});
  }
  {
    engine::ExecutionConfig c;
    c.latency_ms = 30'000;
    models.push_back({"spread + 30 s latency", c});
  }
  {
    engine::ExecutionConfig c;
    c.latency_ms = 5'000;
    c.impact_frac_per_lot = 2e-4;
    models.push_back({"spread + 5 s latency + impact", c});
  }

  for (const auto& model : models) {
    const auto result = engine::simulate_execution(pipeline.master.order_log, cleaned,
                                                   n, model.cfg);
    std::printf("  %-34s %8llu %6llu %12.2f %10.2f %12.2f\n", model.name,
                static_cast<unsigned long long>(result.orders_filled),
                static_cast<unsigned long long>(result.orders_lost),
                result.shortfall_dollars, result.shortfall_bps(),
                pipeline.master.total_pnl - result.shortfall_dollars);
  }

  std::printf("\nshape check: the strategy's edge is a few basis points per\n"
              "round trip, so realized profitability hinges on execution —\n"
              "spread crossing alone consumes a large share of the paper's\n"
              "frictionless returns, and latency compounds it. Exactly the\n"
              "'implementation shortfall' caveat of §VI.\n");
  return 0;
}
