#include "mpmini/wait.hpp"

#include <cstdlib>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mm::mpi {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::uint64_t>(v) : fallback;
}

}  // namespace

TransportMode transport_mode() {
  static const TransportMode mode = [] {
    const char* raw = std::getenv("MM_MPMINI_TRANSPORT");
    if (raw != nullptr && std::string(raw) == "locked") return TransportMode::locked;
    return TransportMode::ring;
  }();
  return mode;
}

const SpinPolicy& spin_policy() {
  static const SpinPolicy policy = [] {
    SpinPolicy p;
    if (std::thread::hardware_concurrency() <= 1) {
      // Single core: a pause can never let the peer progress, and long spins
      // just burn the timeslice the peer needs. Yield immediately, a few
      // times, then park.
      p.iterations = 16;
      p.pause_share = 0;
    }
    p.iterations = static_cast<std::uint32_t>(env_u64("MM_MPMINI_SPIN", p.iterations));
    if (p.pause_share > p.iterations) p.pause_share = p.iterations;
    return p;
  }();
  return policy;
}

std::uint64_t ring_capacity() {
  static const std::uint64_t cap = [] {
    std::uint64_t c = env_u64("MM_MPMINI_RING_CAP", 256);
    if (c < 2) c = 2;
    // A bogus env value must not hang round_up_pow2 or bad_alloc at startup;
    // 2^20 message slots per lane is beyond any sane configuration.
    if (c > (std::uint64_t{1} << 20)) c = std::uint64_t{1} << 20;
    return c;
  }();
  return cap;
}

bool pin_requested() {
  static const bool pin = [] {
    const char* raw = std::getenv("MM_MPMINI_PIN");
    return raw != nullptr && std::string(raw) == "1";
  }();
  return pin;
}

void spin_relax(const SpinPolicy& policy, std::uint32_t step) {
  if (step < policy.pause_share) {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
    return;
  }
  // Past the pause share the peer may need this core — give it up. On a
  // single-CPU host this is what makes spinning a win at all: the handoff
  // costs one scheduler pass instead of a futex sleep/wake pair.
  std::this_thread::yield();
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % cores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace mm::mpi
