#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace mm {

struct Cli::Option {
  enum class Kind { integer, real, text, flag };
  std::string name;
  std::string help;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  bool flag_value = false;
  std::string default_repr;
};

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli::~Cli() = default;

std::int64_t& Cli::add_int(const std::string& name, std::int64_t default_value,
                           const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::integer;
  opt->int_value = default_value;
  opt->default_repr = std::to_string(default_value);
  options_.push_back(std::move(opt));
  return options_.back()->int_value;
}

double& Cli::add_double(const std::string& name, double default_value,
                        const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::real;
  opt->double_value = default_value;
  opt->default_repr = format("%g", default_value);
  options_.push_back(std::move(opt));
  return options_.back()->double_value;
}

std::string& Cli::add_string(const std::string& name, const std::string& default_value,
                             const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::text;
  opt->string_value = default_value;
  opt->default_repr = default_value.empty() ? "\"\"" : default_value;
  options_.push_back(std::move(opt));
  return options_.back()->string_value;
}

bool& Cli::add_flag(const std::string& name, const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::flag;
  opt->default_repr = "false";
  options_.push_back(std::move(opt));
  return options_.back()->flag_value;
}

Cli::Option* Cli::find(const std::string& name) {
  for (auto& opt : options_)
    if (opt->name == name) return opt.get();
  return nullptr;
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\noptions:\n";
  for (const auto& opt : options_) {
    out += "  --" + pad_right(opt->name, 18) + opt->help +
           " (default: " + opt->default_repr + ")\n";
  }
  out += "  --" + pad_right("help", 18) + "show this message\n";
  return out;
}

Status Cli::try_parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (!starts_with(arg, "--"))
      return Error(Errc::invalid_argument, "expected --flag, got: " + std::string(arg));
    arg.remove_prefix(2);
    if (arg == "help") return Error(Errc::invalid_argument, "help requested");

    std::string name;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      have_value = true;
    } else {
      name = std::string(arg);
    }

    Option* opt = find(name);
    if (opt == nullptr) return Error(Errc::invalid_argument, "unknown flag: --" + name);

    if (opt->kind == Option::Kind::flag) {
      if (have_value) return Error(Errc::invalid_argument, "--" + name + " takes no value");
      opt->flag_value = true;
      continue;
    }

    if (!have_value) {
      if (i + 1 >= args.size())
        return Error(Errc::invalid_argument, "--" + name + " needs a value");
      value = args[++i];
    }

    switch (opt->kind) {
      case Option::Kind::integer: {
        auto parsed = parse_int(value);
        if (!parsed) return Error(Errc::invalid_argument, "--" + name + ": " + parsed.error().message);
        opt->int_value = *parsed;
        break;
      }
      case Option::Kind::real: {
        auto parsed = parse_double(value);
        if (!parsed) return Error(Errc::invalid_argument, "--" + name + ": " + parsed.error().message);
        opt->double_value = *parsed;
        break;
      }
      case Option::Kind::text:
        opt->string_value = value;
        break;
      case Option::Kind::flag:
        break;
    }
  }
  return {};
}

void Cli::parse(int argc, char** argv) {
  std::vector<std::string> args;
  bool want_help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--help") {
      want_help = true;
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (want_help) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  if (auto st = try_parse(args); !st) {
    std::fprintf(stderr, "error: %s\n\n%s", st.error().message.c_str(), usage().c_str());
    std::exit(2);
  }
}

}  // namespace mm
