// Maronna robust correlation (bivariate M-estimator of scatter).
//
// Implements the pairwise robust correlation the paper attributes to Maronna
// (1976) and to Chilson et al.'s parallel robust-correlation work [14]: a
// bivariate M-estimator of location and scatter computed by iterative
// reweighting, using a Huber-type weight function. Observations far from the
// current location (in Mahalanobis distance) are smoothly downweighted, so a
// handful of bad ticks cannot swing the estimate the way they swing Pearson.
//
// Two entry points into the same fixed-point map:
//
//   * maronna_estimate   — cold start from coordinatewise medians/MADs. This
//     is the batch estimator; the median/MAD initialization costs several
//     nth_element passes per call.
//   * maronna_reestimate — warm start from a previous converged estimate on
//     an overlapping window (the sliding-window engines advance one return
//     per step, so the previous fixed point is an excellent seed). Skips the
//     median/MAD work and shortens the tail with Anderson extrapolation and
//     a distance-bound early stop: typically ~5 map evaluations instead of
//     ~9 plus initialization. Falls back to cold when the seed is unusable.
//
// WarmMaronna packages the per-pair warm-start bookkeeping (seed validity,
// periodic cold-restart cadence, degenerate-window fallback) for the
// correlation engines; see DESIGN.md "Correlation kernel" for the accuracy
// contract.
//
// The pairwise estimates do NOT assemble into a positive semi-definite
// matrix (the paper's §IV caveat); see psd.hpp for the repair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mm::stats {

struct MaronnaConfig {
  // Huber tuning constant on the Mahalanobis distance (in 2 dimensions,
  // d² ~ chi²(2); k² = 5.99 is the 95% quantile).
  double huber_k2 = 5.99;
  // Convergence threshold on the max relative change of scatter entries.
  double tolerance = 1e-6;
  int max_iterations = 50;
};

struct MaronnaResult {
  double correlation = 0.0;
  double location_x = 0.0;
  double location_y = 0.0;
  double scatter_xx = 0.0;
  double scatter_xy = 0.0;
  double scatter_yy = 0.0;
  // Measured linear-convergence ratio |step_k|/|step_{k-1}| of the fixed
  // point (< 0 when never measured). Diagnostic: the warm path converges in
  // ~log(seed error / tolerance) / log(1/contraction) map evaluations.
  double contraction = -1.0;
  int iterations = 0;
  bool converged = false;
};

// Reusable scratch for the cold start's median/MAD initialization. The
// matrix engines call the estimator O(n²) times per step; routing the copies
// and the deviation buffer through one caller-owned scratch makes the sweep
// allocation-free in steady state (capacity is grown once, then reused).
struct MaronnaScratch {
  std::vector<double> xs, ys;   // permutable copies for median_inplace
  std::vector<double> dev;      // |x - median| buffer for the MAD
};

// Full estimator output. n must be >= 2; degenerate inputs (zero dispersion)
// yield correlation 0. The scratch-taking overload is allocation-free once
// the scratch capacity has grown to n; the convenience overload allocates a
// local scratch per call.
MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config,
                               MaronnaScratch& scratch);
MaronnaResult maronna_estimate(const double* x, const double* y, std::size_t n,
                               const MaronnaConfig& config = {});

// Warm-started re-estimate: seeds the fixed-point iteration from `seed`
// (location + 2×2 scatter of a previous converged estimate on an overlapping
// window) instead of medians/MADs. The iteration map is identical to the
// cold start's on non-degenerate data, so both converge to the same unique
// fixed point; the results agree to within the convergence tolerance. If the
// seed is unusable (non-finite, non-positive-definite, or not converged) the
// call transparently falls back to maronna_estimate.
MaronnaResult maronna_reestimate(const double* x, const double* y, std::size_t n,
                                 const MaronnaResult& seed,
                                 const MaronnaConfig& config,
                                 MaronnaScratch& scratch);
MaronnaResult maronna_reestimate(const double* x, const double* y, std::size_t n,
                                 const MaronnaResult& seed,
                                 const MaronnaConfig& config = {});

// True when the sample's MAD is exactly zero (a majority of values coincide).
// Such windows make the cold start engage its dispersion floors, a different
// iteration map than the floor-free warm path — warm starts must not be used
// there. One Boyer–Moore majority pass, O(n), no allocation.
bool mad_is_zero(const double* v, std::size_t n);

// Default cold-restart cadence for warm-started engines: every this many
// steps each pair re-seeds from medians/MADs, bounding any drift a long warm
// chain could accumulate.
inline constexpr int kWarmRestartInterval = 64;

// Per-pair warm-start state for a sliding-window engine. One instance covers
// `pairs` slots; the engine maps its (i, j) pairs onto slot indices. Call
// advance() once per window step, then estimate() per pair with contiguous
// window views. Results are memoized per step, so repeated queries of the
// same pair in one step return the identical value.
class WarmMaronna {
 public:
  WarmMaronna(std::size_t pairs, const MaronnaConfig& config,
              int restart_interval = kWarmRestartInterval);

  // Start a new window step (invalidates the per-step memo).
  void advance() { ++step_; }

  // Robust correlation of the pair occupying `slot`, over the window views
  // x[0..n) / y[0..n). `degenerate` must be `mad_is_zero(x) || mad_is_zero(y)`
  // (or a conservative true): the engines compute the per-symbol majority
  // scan once per step instead of once per pair, so this class trusts the
  // flag rather than rescanning. A wrong `false` on a MAD-degenerate window
  // would let a warm chain iterate a different (floor-free) map than the
  // batch estimator's and void the accuracy contract.
  double estimate(std::size_t slot, const double* x, const double* y,
                  std::size_t n, bool degenerate = false);

  // Diagnostics: how many estimates since construction ran warm vs cold.
  std::uint64_t warm_calls() const { return warm_calls_; }
  std::uint64_t cold_calls() const { return cold_calls_; }

 private:
  MaronnaConfig config_;
  int restart_interval_;
  std::int64_t step_ = 0;
  std::vector<MaronnaResult> state_;
  std::vector<std::int64_t> cold_step_;      // step of the last cold start
  std::vector<std::int64_t> computed_step_;  // memo: step of the cached value
  std::vector<std::uint8_t> seedable_;
  MaronnaScratch scratch_;  // cold-start median/MAD buffers, reused per pair
  std::uint64_t warm_calls_ = 0;
  std::uint64_t cold_calls_ = 0;
};

// Correlation-only conveniences.
double maronna(const double* x, const double* y, std::size_t n,
               const MaronnaConfig& config = {});
double maronna(const std::vector<double>& x, const std::vector<double>& y,
               const MaronnaConfig& config = {});

}  // namespace mm::stats
