// Tests for the mpmini message-passing runtime: point-to-point semantics,
// envelope matching, ordering, probing, requests and communicator split.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"
#include "mpmini/serde.hpp"

namespace mm::mpi {
namespace {

TEST(Environment, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<int> rank_mask{0};
  Environment::run(4, [&](Comm& comm) {
    ++count;
    rank_mask |= 1 << comm.rank();
    EXPECT_EQ(comm.size(), 4);
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(rank_mask.load(), 0b1111);
}

TEST(Environment, PropagatesRankException) {
  EXPECT_THROW(Environment::run(2,
                                [&](Comm& comm) {
                                  if (comm.rank() == 1)
                                    throw std::runtime_error("rank 1 died");
                                }),
               std::runtime_error);
}

TEST(PointToPoint, RoundTrip) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 5, 99);
      EXPECT_EQ(comm.recv_value<int>(1, 6), 100);
    } else {
      const int v = comm.recv_value<int>(0, 5);
      comm.send_value<int>(0, 6, v + 1);
    }
  });
}

TEST(PointToPoint, PerSourceFifoOrder) {
  Environment::run(2, [](Comm& comm) {
    constexpr int n = 500;
    if (comm.rank() == 0) {
      for (int i = 0; i < n; ++i) comm.send_value<int>(1, 1, i);
    } else {
      for (int i = 0; i < n; ++i) EXPECT_EQ(comm.recv_value<int>(0, 1), i);
    }
  });
}

TEST(PointToPoint, TagSelectivity) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 10, 1);
      comm.send_value<int>(1, 20, 2);
    } else {
      // Receive tag 20 first even though tag 10 arrived first.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(PointToPoint, WildcardSourceReportsActualEnvelope) {
  Environment::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      int seen_mask = 0;
      for (int k = 0; k < 2; ++k) {
        RecvStatus status;
        const int v = comm.recv_value<int>(any_source, any_tag, &status);
        EXPECT_EQ(v, status.source * 10);
        EXPECT_EQ(status.tag, status.source);
        seen_mask |= 1 << status.source;
      }
      EXPECT_EQ(seen_mask, 0b110);
    } else {
      comm.send_value<int>(0, comm.rank(), comm.rank() * 10);
    }
  });
}

TEST(PointToPoint, VectorPayload) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> xs(1000);
      std::iota(xs.begin(), xs.end(), 0.0);
      comm.send_span(1, 3, xs.data(), xs.size());
    } else {
      const auto xs = comm.recv_elems<double>(0, 3);
      ASSERT_EQ(xs.size(), 1000u);
      EXPECT_DOUBLE_EQ(xs[999], 999.0);
    }
  });
}

TEST(Requests, IrecvCompletesOnDelivery) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 7);
      comm.send_value<int>(1, 8, 0);  // tell peer to go
      auto msg = req.wait();
      ASSERT_EQ(msg.payload.size(), sizeof(int));
      int v;
      std::memcpy(&v, msg.payload.data(), sizeof(int));
      EXPECT_EQ(v, 123);
    } else {
      (void)comm.recv(0, 8);
      comm.send_value<int>(0, 7, 123);
    }
  });
}

TEST(Requests, IsendIsBornComplete) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.isend(1, 1, {1, 2, 3});
      EXPECT_TRUE(req.test());
      req.wait();
    } else {
      EXPECT_EQ(comm.recv(0, 1).size(), 3u);
    }
  });
}

TEST(Probe, ReportsWithoutConsuming) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<double>(1, 4, 2.5);
    } else {
      const auto status = comm.probe(0, 4);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 4);
      EXPECT_EQ(status.byte_count, sizeof(double));
      // Message still there.
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 4), 2.5);
    }
  });
}

TEST(Probe, IprobeNegativeThenPositive) {
  Environment::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.iprobe(1, 9, nullptr));
      comm.send_value<int>(1, 2, 0);  // release peer
      (void)comm.recv(1, 9);
    } else {
      (void)comm.recv(0, 2);
      comm.send_value<int>(0, 9, 1);
    }
  });
}

TEST(Split, GroupsByColorOrdersByKey) {
  Environment::run(4, [](Comm& comm) {
    // Even ranks -> color 0, odd -> color 1; key reverses order.
    Comm sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 2);
    // Higher parent rank got lower key, so it is rank 0 in the subgroup.
    const int expected_rank = comm.rank() >= 2 ? 0 : 1;
    EXPECT_EQ(sub.rank(), expected_rank);

    // Traffic stays inside the subgroup.
    if (sub.rank() == 0) {
      sub.send_value<int>(1, 1, comm.rank());
    } else {
      const int from = sub.recv_value<int>(0, 1);
      EXPECT_EQ(from % 2, comm.rank() % 2);
    }
  });
}

TEST(Duplicate, SeparatesTrafficFromParent) {
  Environment::run(2, [](Comm& comm) {
    Comm dup = comm.duplicate();
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      dup.send_value<int>(1, 1, 20);
    } else {
      // Same (source, tag) but different communicators must not cross-match.
      EXPECT_EQ(dup.recv_value<int>(0, 1), 20);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(Serde, RoundTripsMixedPayload) {
  Packer packer;
  packer.put<int>(7);
  packer.put<double>(2.5);
  packer.put_string("hello world");
  packer.put_vector(std::vector<float>{1.f, 2.f, 3.f});
  const auto bytes = packer.take();

  Unpacker unpacker(bytes);
  EXPECT_EQ(unpacker.get<int>(), 7);
  EXPECT_DOUBLE_EQ(unpacker.get<double>(), 2.5);
  EXPECT_EQ(unpacker.get_string(), "hello world");
  const auto v = unpacker.get_vector<float>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_FLOAT_EQ(v[2], 3.f);
  EXPECT_TRUE(unpacker.exhausted());
}

TEST(SendRecv, SimultaneousExchangeDoesNotDeadlock) {
  Environment::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<std::uint8_t> mine = {static_cast<std::uint8_t>(comm.rank())};
    const auto got = comm.sendrecv(peer, 3, mine, peer, 3);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<std::uint8_t>(peer));
  });
}

TEST(SendRecv, RingRotation) {
  constexpr int n = 5;
  Environment::run(n, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<std::uint8_t> token = {static_cast<std::uint8_t>(comm.rank())};
    // Rotate the token all the way around the ring.
    for (int step = 0; step < comm.size(); ++step)
      token = comm.sendrecv(next, 1, std::move(token), prev, 1);
    EXPECT_EQ(token[0], static_cast<std::uint8_t>(comm.rank()));
  });
}

TEST(WaitAll, CollectsEveryMessage) {
  Environment::run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      for (int src = 1; src < 4; ++src) requests.push_back(comm.irecv(src, 9));
      comm.barrier();
      auto messages = wait_all(requests);
      ASSERT_EQ(messages.size(), 3u);
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(messages[i].source, static_cast<int>(i) + 1);
    } else {
      comm.barrier();
      comm.send_value<int>(0, 9, comm.rank());
    }
  });
}

TEST(WaitAny, ReturnsACompletedRequest) {
  Environment::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      requests.push_back(comm.irecv(1, 5));
      requests.push_back(comm.irecv(2, 5));
      // Only rank 2 sends at first.
      comm.send_value<int>(2, 6, 0);
      Message msg;
      const auto idx = wait_any(requests, &msg);
      EXPECT_EQ(idx, 1u);
      EXPECT_EQ(msg.source, 2);
      // Now release rank 1 and drain the other request.
      comm.send_value<int>(1, 6, 0);
      (void)requests[0].wait();
    } else if (comm.rank() == 1) {
      (void)comm.recv(0, 6);
      comm.send_value<int>(0, 5, 1);
    } else {
      (void)comm.recv(0, 6);
      comm.send_value<int>(0, 5, 2);
    }
  });
}

TEST(Mailbox, ManyToOneStress) {
  constexpr int producers = 7;
  constexpr int per_producer = 200;
  Environment::run(producers + 1, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> next(producers + 1, 0);
      for (int k = 0; k < producers * per_producer; ++k) {
        RecvStatus status;
        const int v = comm.recv_value<int>(any_source, 1, &status);
        // Per-source FIFO even under contention.
        EXPECT_EQ(v, next[static_cast<std::size_t>(status.source)]++);
      }
    } else {
      for (int i = 0; i < per_producer; ++i) comm.send_value<int>(0, 1, i);
    }
  });
}

}  // namespace
}  // namespace mm::mpi
