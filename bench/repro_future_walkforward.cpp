// §VI future-work reproduction, done without look-ahead: walk-forward
// parameter selection. Picks the best factor level per treatment on each
// formation block and scores it on the next block — the out-of-sample view of
// "identification of optimal parameter sets", including the overfitting
// penalty a naive in-sample selection hides.
#include <cstdio>

#include "common/cli.hpp"
#include "core/walkforward.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_future_walkforward",
              "Walk-forward parameter selection (future work, out-of-sample)");
  auto& symbols = cli.add_int("symbols", 12, "universe size");
  auto& days = cli.add_int("days", 6, "trading days");
  auto& formation = cli.add_int("formation", 2, "days per formation block");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& objective_arg = cli.add_string("objective", "mean_return",
                                       "mean_return|sharpe|drawdown|win_loss");
  cli.parse(argc, argv);

  const auto objective = mm::core::parse_objective(objective_arg);
  if (!objective) {
    std::fprintf(stderr, "%s\n", objective.error().message.c_str());
    return 2;
  }

  mm::core::WalkForwardConfig cfg;
  cfg.experiment.symbols = static_cast<std::size_t>(symbols);
  cfg.experiment.days = static_cast<int>(days);
  cfg.experiment.generator.seed = static_cast<std::uint64_t>(seed);
  cfg.formation_days = static_cast<int>(formation);
  cfg.objective = *objective;

  const auto result = mm::core::walk_forward(cfg);
  std::printf("%s", mm::core::render_walk_forward(result, cfg).c_str());
  std::printf("\nshape check: the in-sample winner's edge shrinks out of\n"
              "sample (selection bias over 14 levels); robust treatments\n"
              "should lose less — the caveat a practitioner must attach to\n"
              "any 'optimal parameter set' claim.\n");
  return 0;
}
