// Symmetric matrix with packed upper-triangular storage.
//
// Correlation matrices for n symbols need n(n+1)/2 doubles, not n²; for the
// paper's 8000-stock aspiration that is the difference between 256 MB and
// 512 MB per snapshot. Diagonal defaults to 1 (correlation convention is the
// caller's responsibility via fill_diagonal / set).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mm::stats {

class SymMatrix {
 public:
  SymMatrix() = default;
  explicit SymMatrix(std::size_t n, double fill = 0.0)
      : n_(n), data_(n * (n + 1) / 2, fill) {}

  std::size_t size() const { return n_; }

  double operator()(std::size_t i, std::size_t j) const { return data_[index(i, j)]; }

  void set(std::size_t i, std::size_t j, double value) { data_[index(i, j)] = value; }

  void fill_diagonal(double value) {
    for (std::size_t i = 0; i < n_; ++i) set(i, i, value);
  }

  // Packed element count and raw access (for message transport).
  std::size_t packed_size() const { return data_.size(); }
  const std::vector<double>& packed() const { return data_; }
  std::vector<double>& packed() { return data_; }

  static SymMatrix from_packed(std::size_t n, std::vector<double> packed) {
    SymMatrix m;
    m.n_ = n;
    MM_ASSERT_MSG(packed.size() == n * (n + 1) / 2, "packed size mismatch");
    m.data_ = std::move(packed);
    return m;
  }

  // Max |a(i,j) - b(i,j)|, for tests.
  static double max_abs_diff(const SymMatrix& a, const SymMatrix& b) {
    MM_ASSERT(a.n_ == b.n_);
    double worst = 0.0;
    for (std::size_t k = 0; k < a.data_.size(); ++k) {
      const double d = a.data_[k] > b.data_[k] ? a.data_[k] - b.data_[k]
                                               : b.data_[k] - a.data_[k];
      if (d > worst) worst = d;
    }
    return worst;
  }

 private:
  std::size_t index(std::size_t i, std::size_t j) const {
    MM_ASSERT(i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    // Row-major upper triangle: row i starts at i*n - i(i-1)/2 - ... use
    // standard formula: idx = i*(2n - i - 1)/2 + j.
    return i * (2 * n_ - i - 1) / 2 + j;
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

// Flat list of the n(n-1)/2 unordered pairs (i < j), in the canonical order
// used to shard work across the parallel correlation workers.
struct PairIndex {
  std::uint32_t i;
  std::uint32_t j;
};

inline std::vector<PairIndex> all_pairs(std::size_t n) {
  std::vector<PairIndex> out;
  out.reserve(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) out.push_back({i, j});
  return out;
}

// Canonical slot of the unordered pair (i < j) in all_pairs(n) order —
// row-major upper triangle without the diagonal. O(1); lets engines keep
// per-pair state in a flat array without materializing the pair list.
inline std::size_t pair_slot(std::size_t n, std::size_t i, std::size_t j) {
  MM_ASSERT(i < j && j < n);
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

// The same n(n-1)/2 pairs in tile-major order: the symbol range is cut into
// `tile`-wide blocks and the pairs of each (block_i, block_j) tile are
// emitted together. A contiguous span of this order touches at most ~2·tile
// distinct window rows, so at thousands of symbols a rank's shard stays
// cache-resident instead of streaming the whole window store per row — the
// row-major order's last rows pair symbol i with every j > i. tile == 0 (or
// >= n) degrades to all_pairs. Every pair appears exactly once; pair_slot
// stays the canonical per-pair state index regardless of iteration order.
inline std::vector<PairIndex> tiled_pairs(std::size_t n, std::size_t tile) {
  if (tile == 0 || tile >= n) return all_pairs(n);
  std::vector<PairIndex> out;
  out.reserve(n * (n - 1) / 2);
  for (std::size_t bi = 0; bi < n; bi += tile) {
    const std::size_t iend = std::min(bi + tile, n);
    for (std::size_t bj = bi; bj < n; bj += tile) {
      const std::size_t jend = std::min(bj + tile, n);
      for (std::size_t i = bi; i < iend; ++i) {
        for (std::size_t j = std::max(i + 1, bj); j < jend; ++j)
          out.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
      }
    }
  }
  return out;
}

}  // namespace mm::stats
