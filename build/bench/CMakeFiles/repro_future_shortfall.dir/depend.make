# Empty dependencies file for repro_future_shortfall.
# This may be replaced when dependencies are built.
