// The canonical pair trading strategy of §III, as a per-pair state machine.
//
// Feed one step per ∆s interval: the two legs' prices and the pair's current
// correlation coefficient (computed elsewhere over the last M log-returns).
// The machine implements the paper's six steps:
//   1. average correlation C̄ over the last W intervals;
//   2. entry check — C̄ > A and the correlation freshly diverged more than
//      d (fraction) below C̄ within the last Y intervals;
//   3. direction — long the under-performer / short the over-performer by
//      W-interval return;
//   4. cash-neutral-but-slightly-long share ratio via the floor/ceil price
//      ratio rule;
//   5. exit — spread retracement to level L (ℓ between the RT-window spread
//      extremes, side chosen by where the entry spread sat relative to the
//      window average), a maximum holding period HP, end of day, and the
//      optional extensions (absolute stop-loss, correlation reversion);
//   6. trade return = pnl / (Pi·Ni + Pj·Nj) at entry.
//
// Interpretation note (the paper leaves this implicit): "diverged within the
// last Y intervals" is read as *freshness* — the streak of consecutive
// diverged intervals must be at most Y long, so a pair stuck in a stale
// divergence does not re-trigger all day.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "stats/rolling.hpp"

namespace mm::core {

enum class ExitReason : std::uint8_t {
  retracement,
  max_holding,
  end_of_day,
  stop_loss,
  correlation_reversion,
};

const char* to_string(ExitReason reason);

// A completed round trip on one pair. Shares are signed (+long / -short).
struct Trade {
  std::int64_t entry_interval = 0;
  std::int64_t exit_interval = 0;
  double entry_price_i = 0.0;
  double entry_price_j = 0.0;
  double exit_price_i = 0.0;
  double exit_price_j = 0.0;
  double shares_i = 0.0;
  double shares_j = 0.0;
  double pnl = 0.0;           // dollars, net of configured costs
  double gross_basis = 0.0;   // |Ni|·Pi + |Nj|·Pj at entry (the paper's Eq. 6 denom)
  double trade_return = 0.0;  // pnl / gross_basis
  ExitReason exit_reason = ExitReason::end_of_day;
};

class PairStrategy {
 public:
  // `smax` is the number of intervals in the trading day; the ST rule (no new
  // positions within ST intervals of the close) is enforced against it.
  PairStrategy(const StrategyParams& params, std::int64_t smax);

  // Advance one interval. `corr_valid` is false until the upstream window has
  // M returns. Prices are the legs' BAM at the close of interval s; s must be
  // strictly increasing across calls.
  void step(std::int64_t s, double price_i, double price_j, double corr,
            bool corr_valid);

  // End of trading day: close any open position at the last seen prices
  // (§III step 5: "reverse all positions at the end of the trading day").
  void finish();

  bool in_position() const { return open_; }
  const std::vector<Trade>& trades() const { return trades_; }
  std::vector<Trade> take_trades() { return std::move(trades_); }

  // Introspection for tests and for the pipeline's order emission.
  bool correlation_ready() const { return corr_mean_.full(); }
  double average_correlation() const { return corr_mean_.mean(); }
  std::int64_t entry_interval() const { return entry_s_; }
  double position_shares_i() const { return shares_i_; }
  double position_shares_j() const { return shares_j_; }
  double position_entry_price_i() const { return entry_price_i_; }
  double position_entry_price_j() const { return entry_price_j_; }

 private:
  void try_enter(std::int64_t s, double price_i, double price_j);
  void check_exit(std::int64_t s, double price_i, double price_j, double corr,
                  bool corr_valid, double avg_corr);
  void close_position(std::int64_t s, double price_i, double price_j,
                      ExitReason reason);
  double mark_to_market_return(double price_i, double price_j) const;

  StrategyParams params_;
  std::int64_t smax_;

  // Signal state.
  stats::RollingMean corr_mean_;            // C̄ over W
  std::int64_t diverged_streak_ = 0;        // consecutive intervals below C̄(1-d)

  // Price/spread state.
  stats::RollingWindow<double> price_hist_i_;  // last W+1 prices for W-return
  stats::RollingWindow<double> price_hist_j_;
  stats::RollingMinMax spread_extremes_;       // over RT
  stats::RollingMean spread_mean_;             // over RT

  // Position state.
  bool open_ = false;
  std::int64_t entry_s_ = 0;
  double entry_price_i_ = 0.0, entry_price_j_ = 0.0;
  double shares_i_ = 0.0, shares_j_ = 0.0;  // signed
  double gross_basis_ = 0.0;
  double retrace_level_ = 0.0;
  bool exit_when_spread_above_ = false;  // direction of the retracement cross

  std::int64_t last_s_ = -1;
  double last_price_i_ = 0.0, last_price_j_ = 0.0;

  std::vector<Trade> trades_;
};

// Cash-neutral-but-slightly-long sizing (§III step 4). Returns signed share
// counts for legs i and j given the entry prices and which leg goes long.
struct ShareRatio {
  double shares_i;
  double shares_j;
};
ShareRatio size_position(double price_i, double price_j, bool long_i);

}  // namespace mm::core
