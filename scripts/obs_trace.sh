#!/usr/bin/env bash
# Build and run the telemetry demo: one synthetic day through the Fig. 1
# pipeline with metrics + tracing on, printing the metrics snapshot and
# writing a Chrome-trace JSON (open it in chrome://tracing or
# https://ui.perfetto.dev). Usage: scripts/obs_trace.sh [build-dir] [out.json]
# (defaults: build, obs_demo.trace.json at the repo root).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/obs_demo.trace.json"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target obs_demo
"$build_dir/examples/obs_demo" --trace "$out"
