// Tests for portfolio accounting and the equity-curve simulation.
#include <gtest/gtest.h>

#include "core/backtester.hpp"
#include "core/portfolio.hpp"
#include "marketdata/bars.hpp"
#include "marketdata/cleaner.hpp"
#include "marketdata/generator.hpp"

namespace mm::core {
namespace {

TEST(Portfolio, CashAndPositionsTrackFills) {
  Portfolio book(1000.0);
  EXPECT_DOUBLE_EQ(book.cash(), 1000.0);
  EXPECT_TRUE(book.flat());

  book.apply_fill(0, 10.0, 20.0);  // buy 10 @ 20
  EXPECT_DOUBLE_EQ(book.cash(), 800.0);
  EXPECT_DOUBLE_EQ(book.position(0), 10.0);
  EXPECT_DOUBLE_EQ(book.equity(), 1000.0);  // marked at fill price

  book.apply_fill(1, -5.0, 30.0);  // short 5 @ 30
  EXPECT_DOUBLE_EQ(book.cash(), 950.0);
  EXPECT_DOUBLE_EQ(book.equity(), 1000.0);
  EXPECT_DOUBLE_EQ(book.gross_exposure(), 200.0 + 150.0);
  EXPECT_DOUBLE_EQ(book.net_exposure(), 200.0 - 150.0);
}

TEST(Portfolio, MarkToMarketMovesEquity) {
  Portfolio book(100.0);
  book.apply_fill(0, 2.0, 10.0);  // long 2 @ 10, cash 80
  book.mark(0, 12.0);
  EXPECT_DOUBLE_EQ(book.equity(), 80.0 + 24.0);
  book.mark(0, 8.0);
  EXPECT_DOUBLE_EQ(book.equity(), 80.0 + 16.0);
}

TEST(Portfolio, ShortsGainWhenPriceFalls) {
  Portfolio book(100.0);
  book.apply_fill(0, -1.0, 50.0);  // cash 150
  book.mark(0, 40.0);
  EXPECT_DOUBLE_EQ(book.equity(), 150.0 - 40.0);  // +10 vs initial
}

TEST(Portfolio, RoundTripRealizesPnl) {
  Portfolio book(0.0);
  book.apply_fill(0, 5.0, 30.0);   // -150 cash
  book.apply_fill(0, -5.0, 29.0);  // +145 cash
  EXPECT_TRUE(book.flat());
  EXPECT_DOUBLE_EQ(book.cash(), -5.0);
  EXPECT_DOUBLE_EQ(book.equity(), -5.0);
}

TEST(SimulatePortfolio, PaperTradeExample) {
  // The §III example trade: short 1 IBM @130, long 5 MSFT @30; exit at
  // 120 / 29 -> +$5. Build the flat BAM grid around those prices.
  std::vector<std::vector<double>> bam(2);
  bam[0].assign(100, 130.0);  // IBM (symbol 0)
  bam[1].assign(100, 30.0);   // MSFT (symbol 1)
  for (std::size_t s = 50; s < 100; ++s) {
    bam[0][s] = 120.0;
    bam[1][s] = 29.0;
  }

  Trade t;
  t.entry_interval = 10;
  t.exit_interval = 50;
  t.entry_price_i = 130.0;
  t.entry_price_j = 30.0;
  t.exit_price_i = 120.0;
  t.exit_price_j = 29.0;
  t.shares_i = -1.0;
  t.shares_j = 5.0;

  const auto curve =
      simulate_portfolio({{stats::PairIndex{0, 1}, t}}, bam, 1000.0);
  ASSERT_EQ(curve.size(), 100u);
  EXPECT_DOUBLE_EQ(curve[0].equity, 1000.0);      // before entry
  EXPECT_DOUBLE_EQ(curve[20].equity, 1000.0);     // marked at entry prices
  EXPECT_DOUBLE_EQ(curve[99].equity, 1005.0);     // +$5 realized
  EXPECT_DOUBLE_EQ(curve[20].gross_exposure, 130.0 + 150.0);
  EXPECT_DOUBLE_EQ(curve[99].gross_exposure, 0.0);
}

TEST(SimulatePortfolio, AggregatesRealBacktestConsistently) {
  // Run the strategy on a synthetic day, aggregate all pairs' trades; the
  // final equity gain must equal the summed trade pnl.
  constexpr std::size_t n = 5;
  const auto universe = md::make_universe(n);
  md::GeneratorConfig cfg;
  cfg.quote_rate = 0.2;
  const md::SyntheticDay day(universe, cfg, 3);
  md::QuoteCleaner cleaner(n, md::CleanerConfig{});
  const auto bam = md::sample_bam_series(cleaner.clean(day.quotes()), n, cfg.session, 30);

  StrategyParams params = ParamGrid::base();
  params.divergence = 0.0005;
  const auto market = compute_market_corr_series(bam, params.corr_window, false);
  const auto pairs = stats::all_pairs(n);

  std::vector<TaggedTrade> tagged;
  double total_pnl = 0.0;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    for (const auto& t :
         run_pair_day(params, bam[pairs[k].i], bam[pairs[k].j], market, k)) {
      tagged.push_back({pairs[k], t});
      total_pnl += t.pnl;
    }
  }
  ASSERT_FALSE(tagged.empty());

  const double initial = 100000.0;
  const auto curve = simulate_portfolio(tagged, bam, initial);
  EXPECT_NEAR(curve.back().equity - initial, total_pnl, 1e-6);
  EXPECT_DOUBLE_EQ(curve.back().gross_exposure, 0.0);  // EOD flat
}

TEST(RenderEquityCurve, ProducesChart) {
  std::vector<EquityPoint> curve;
  for (int s = 0; s < 100; ++s)
    curve.push_back({s, 1000.0 + s * 0.5, 0.0});
  const auto chart = render_equity_curve(curve, 40, 8);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("1049"), std::string::npos);  // top label ~1049.5
  // 8 data rows + axis.
  EXPECT_EQ(static_cast<std::size_t>(std::count(chart.begin(), chart.end(), '\n')), 9u);
}

}  // namespace
}  // namespace mm::core
