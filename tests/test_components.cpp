// Unit tests for individual Fig. 1 pipeline components, each driven through a
// minimal dagflow graph with a scripted source and a capturing sink.
#include <gtest/gtest.h>

#include <cmath>

#include "dagflow/context.hpp"
#include "engine/components.hpp"
#include "engine/messages.hpp"
#include "marketdata/generator.hpp"

namespace mm::engine {
namespace {

md::Quote quote_at(md::TimeMs ts, md::SymbolId sym, double mid) {
  md::Quote q;
  q.ts_ms = ts;
  q.symbol = sym;
  q.bid = mid - 0.05;
  q.ask = mid + 0.05;
  q.bid_size = 1;
  q.ask_size = 1;
  return q;
}

// Runs `node` with a source that emits `input` payloads and returns every
// payload the node emits on its port 0.
std::vector<std::vector<std::uint8_t>> drive(dag::NodeFn node,
                                             std::vector<std::vector<std::uint8_t>> input) {
  std::vector<std::vector<std::uint8_t>> captured;
  dag::Graph g;
  const int src = g.add_node("src", [&](dag::Context& ctx) {
    for (auto& payload : input) ctx.emit(0, std::move(payload));
  });
  const int uut = g.add_node("uut", std::move(node));
  const int sink = g.add_node("sink", [&](dag::Context& ctx) {
    while (auto msg = ctx.recv()) captured.push_back(std::move(msg->bytes));
  });
  g.connect(src, 0, uut, 0);
  g.connect(uut, 0, sink, 0);
  g.run();
  return captured;
}

TEST(FileCollector, BatchesAndFlushesRemainder) {
  std::vector<md::Quote> quotes;
  const md::Session session;
  for (int i = 0; i < 10; ++i)
    quotes.push_back(quote_at(session.open_ms() + i * 1000, 0, 20.0));

  std::vector<std::vector<std::uint8_t>> captured;
  dag::Graph g;
  const int src = g.add_node("collector", make_file_collector(quotes, 4));
  const int sink = g.add_node("sink", [&](dag::Context& ctx) {
    while (auto msg = ctx.recv()) captured.push_back(std::move(msg->bytes));
  });
  g.connect(src, 0, sink, 0);
  g.run();

  ASSERT_EQ(captured.size(), 3u);  // 4 + 4 + 2
  mpi::Unpacker last(captured.back());
  ASSERT_EQ(static_cast<RecordType>(last.get<std::uint8_t>()), RecordType::quote_batch);
  EXPECT_EQ(QuoteBatch::unpack(last).quotes.size(), 2u);
}

TEST(CleanerNode, FiltersWithinBatches) {
  const md::Session session;
  QuoteBatch batch;
  for (int i = 0; i < 60; ++i)
    batch.quotes.push_back(quote_at(session.open_ms() + i * 500, 0, 30.0));
  batch.quotes.push_back(quote_at(session.open_ms() + 60 * 500, 0, 90.0));  // outlier

  const auto captured = drive(make_cleaner(1, md::CleanerConfig{}), {batch.pack()});
  ASSERT_EQ(captured.size(), 1u);
  mpi::Unpacker u(captured[0]);
  ASSERT_EQ(static_cast<RecordType>(u.get<std::uint8_t>()), RecordType::quote_batch);
  EXPECT_EQ(QuoteBatch::unpack(u).quotes.size(), 60u);
}

TEST(SnapshotStage, EmitsEveryIntervalWithCarryForward) {
  const md::Session session;
  QuoteBatch batch;
  batch.quotes.push_back(quote_at(session.open_ms() + 1000, 0, 10.0));
  batch.quotes.push_back(quote_at(session.open_ms() + 95'000, 0, 12.0));  // interval 3

  const auto captured =
      drive(make_snapshot_stage(1, session, 30, {10.0}), {batch.pack()});
  ASSERT_EQ(captured.size(), 780u);  // one per interval, EOS flush included

  // Interval 0 closes at the first price; intervals 1-2 carry it forward;
  // interval 3 onward carries the second price.
  const auto snap_at = [&](std::size_t s) {
    mpi::Unpacker u(captured[s]);
    EXPECT_EQ(static_cast<RecordType>(u.get<std::uint8_t>()), RecordType::snapshot);
    return Snapshot::unpack(u);
  };
  EXPECT_DOUBLE_EQ(snap_at(0).prices[0], 10.0);
  EXPECT_DOUBLE_EQ(snap_at(2).prices[0], 10.0);
  EXPECT_DOUBLE_EQ(snap_at(3).prices[0], 12.0);
  EXPECT_DOUBLE_EQ(snap_at(779).prices[0], 12.0);
  // Returns: empty at s=0, log-return at s=3, zero where carried.
  EXPECT_TRUE(snap_at(0).returns.empty());
  EXPECT_NEAR(snap_at(3).returns[0], std::log(12.0 / 10.0), 1e-12);
  EXPECT_DOUBLE_EQ(snap_at(2).returns[0], 0.0);
  // Intervals are sequential.
  for (std::size_t s = 0; s < 780; ++s)
    EXPECT_EQ(snap_at(s).interval, static_cast<std::int64_t>(s));
}

TEST(CorrelationStage, FramesInvalidUntilWindowFills) {
  const md::Session session;
  // Feed synthetic snapshots directly.
  std::vector<std::vector<std::uint8_t>> input;
  mm::Rng rng(3);
  for (int s = 0; s < 30; ++s) {
    Snapshot snap;
    snap.interval = s;
    snap.prices = {10.0, 20.0};
    if (s > 0) snap.returns = {rng.normal() * 1e-4, rng.normal() * 1e-4};
    input.push_back(snap.pack());
  }

  const auto captured = drive(
      make_correlation_stage(2, /*corr_window=*/10, true, {}, /*fan_out=*/1), input);
  ASSERT_EQ(captured.size(), 30u);
  for (std::size_t s = 0; s < 30; ++s) {
    mpi::Unpacker u(captured[s]);
    ASSERT_EQ(static_cast<RecordType>(u.get<std::uint8_t>()), RecordType::corr_frame);
    const auto frame = CorrFrame::unpack(u);
    // Window of 10 returns fills at interval 10.
    EXPECT_EQ(frame.valid, s >= 10) << "interval " << s;
    if (frame.valid) {
      ASSERT_EQ(frame.pearson.size(), 1u);
      ASSERT_EQ(frame.maronna.size(), 1u);
      EXPECT_GE(frame.pearson[0], -1.0);
      EXPECT_LE(frame.pearson[0], 1.0);
    }
  }
}

TEST(StrategyNode, EmitsPairedEntryExitOrdersAndSummary) {
  // Synthesize corr frames that warm up, then force a divergence.
  core::StrategyParams params = core::ParamGrid::base();
  params.avg_window = 5;
  params.divergence_window = 3;
  params.spread_window = 4;
  params.max_holding = 6;
  params.divergence = 0.01;

  std::vector<std::vector<std::uint8_t>> input;
  for (int s = 0; s < 40; ++s) {
    CorrFrame frame;
    frame.interval = s;
    frame.valid = true;
    frame.prices = {100.0, 50.0 + 0.25 * s};
    frame.pearson = {s == 30 ? 0.5 : 0.9};
    input.push_back(frame.pack());
  }

  const auto captured = drive(
      make_strategy_stage(params, {{0, 1}}, /*strategy_id=*/7, /*smax=*/780), input);

  // Expect: entry order at s=30, an exit order (HP at s=36), and a summary.
  std::size_t entries = 0, exits = 0, summaries = 0;
  for (const auto& bytes : captured) {
    mpi::Unpacker u(bytes);
    const auto type = static_cast<RecordType>(u.get<std::uint8_t>());
    if (type == RecordType::order) {
      const auto order = Order::unpack(u);
      EXPECT_EQ(order.strategy_id, 7);
      if (order.is_entry) {
        ++entries;
        EXPECT_EQ(order.interval, 30);
      } else {
        ++exits;
        // Exit shares cancel the entry exactly (flat after round trip).
      }
    } else if (type == RecordType::strategy_summary) {
      ++summaries;
      EXPECT_EQ(StrategySummary::unpack(u).trades, 1u);
    }
  }
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(exits, 1u);
  EXPECT_EQ(summaries, 1u);
}

TEST(ClusterStage, EmitsGroupingsAtCadence) {
  // 4 symbols, pairs (canonical): 01 02 03 12 13 23. Frames carry a
  // two-block structure: {0,1} and {2,3} tight, cross weak.
  std::vector<std::vector<std::uint8_t>> input;
  for (int s = 0; s < 30; ++s) {
    CorrFrame frame;
    frame.interval = s;
    frame.valid = s >= 5;
    frame.prices = {10, 11, 12, 13};
    frame.pearson = {0.9, 0.1, 0.1, 0.1, 0.1, 0.85};
    input.push_back(frame.pack());
  }

  const auto captured = drive(make_cluster_stage(4, 2, /*cadence=*/10), input);
  // Valid frames at intervals 5..29; cadence 10 -> intervals 10 and 20.
  ASSERT_EQ(captured.size(), 2u);
  for (const auto& bytes : captured) {
    mpi::Unpacker u(bytes);
    ASSERT_EQ(static_cast<RecordType>(u.get<std::uint8_t>()),
              RecordType::cluster_snapshot);
    const auto snap = ClusterSnapshot::unpack(u);
    EXPECT_EQ(snap.cluster_count, 2);
    ASSERT_EQ(snap.assignment.size(), 4u);
    EXPECT_EQ(snap.assignment[0], snap.assignment[1]);
    EXPECT_EQ(snap.assignment[2], snap.assignment[3]);
    EXPECT_NE(snap.assignment[0], snap.assignment[2]);
  }
}

TEST(MasterNode, AggregatesAcrossInputs) {
  MasterReport report;
  dag::Graph g;
  const auto emit_orders = [](int count, std::int32_t id) {
    return [count, id](dag::Context& ctx) {
      for (int k = 0; k < count; ++k) {
        Order order;
        order.interval = k;
        order.strategy_id = id;
        order.symbol_i = 0;
        order.symbol_j = 1;
        order.shares_i = 1.0;
        order.shares_j = -2.0;
        order.price_i = 10.0;
        order.price_j = 5.0;
        order.is_entry = 1;
        ctx.emit(0, order.pack());
      }
      StrategySummary summary;
      summary.strategy_id = id;
      summary.trades = static_cast<std::uint64_t>(count);
      summary.total_pnl = count * 1.5;
      ctx.emit(0, summary.pack());
    };
  };
  const int a = g.add_node("a", emit_orders(3, 1));
  const int b = g.add_node("b", emit_orders(2, 2));
  const int master = g.add_node("master", make_master(&report));
  g.connect(a, 0, master, 0);
  g.connect(b, 0, master, 1);
  g.run();

  EXPECT_EQ(report.orders, 5u);
  EXPECT_EQ(report.entries, 5u);
  EXPECT_EQ(report.trades, 5u);
  EXPECT_DOUBLE_EQ(report.total_pnl, 7.5);
  EXPECT_DOUBLE_EQ(report.net_shares[0], 5.0);
  EXPECT_DOUBLE_EQ(report.net_shares[1], -10.0);
  EXPECT_EQ(report.basket_count, 3u);  // intervals 0,1,2
  // Netting: intervals 0 and 1 carry orders from both strategies, same side,
  // so raw == netted there; no reduction anywhere (all same-signed).
  EXPECT_DOUBLE_EQ(report.raw_order_shares, report.netted_order_shares);
}

}  // namespace
}  // namespace mm::engine
