// Tests for BAM sampling, OHLC accumulation and log-return construction.
#include <gtest/gtest.h>

#include <cmath>

#include "marketdata/bars.hpp"

namespace mm::md {
namespace {

Quote quote_at(TimeMs ts, SymbolId sym, double mid) {
  Quote q;
  q.ts_ms = ts;
  q.symbol = sym;
  q.bid = mid - 0.05;
  q.ask = mid + 0.05;
  q.bid_size = 1;
  q.ask_size = 1;
  return q;
}

TEST(LogReturns, MatchesDefinition) {
  const std::vector<double> prices = {100.0, 101.0, 99.0};
  const auto r = log_returns(prices);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], std::log(101.0 / 100.0));
  EXPECT_DOUBLE_EQ(r[1], std::log(99.0 / 101.0));
}

TEST(LogReturns, ShortInputs) {
  EXPECT_TRUE(log_returns({}).empty());
  EXPECT_TRUE(log_returns({5.0}).empty());
}

TEST(SampleBamSeries, LastQuoteOfIntervalWins) {
  const Session session;
  const TimeMs open = session.open_ms();
  std::vector<Quote> quotes = {
      quote_at(open + 1'000, 0, 10.0),
      quote_at(open + 20'000, 0, 11.0),   // last in interval 0
      quote_at(open + 40'000, 0, 12.0),   // interval 1
  };
  const auto series = sample_bam_series(quotes, 1, session, 30);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].size(), 780u);
  EXPECT_DOUBLE_EQ(series[0][0], 11.0);
  EXPECT_DOUBLE_EQ(series[0][1], 12.0);
}

TEST(SampleBamSeries, CarriesForwardThroughQuietIntervals) {
  const Session session;
  const TimeMs open = session.open_ms();
  std::vector<Quote> quotes = {
      quote_at(open + 1'000, 0, 10.0),
      quote_at(open + 300'000, 0, 20.0),  // interval 10
  };
  const auto series = sample_bam_series(quotes, 1, session, 30);
  for (int s = 0; s < 10; ++s) EXPECT_DOUBLE_EQ(series[0][static_cast<std::size_t>(s)], 10.0);
  EXPECT_DOUBLE_EQ(series[0][10], 20.0);
  EXPECT_DOUBLE_EQ(series[0][779], 20.0);
}

TEST(SampleBamSeries, BackfillsBeforeFirstQuote) {
  const Session session;
  const TimeMs open = session.open_ms();
  std::vector<Quote> quotes = {
      quote_at(open + 95'000, 0, 42.0),  // first quote in interval 3
  };
  const auto series = sample_bam_series(quotes, 1, session, 30);
  EXPECT_DOUBLE_EQ(series[0][0], 42.0);
  EXPECT_DOUBLE_EQ(series[0][2], 42.0);
  EXPECT_DOUBLE_EQ(series[0][3], 42.0);
}

TEST(SampleBamSeries, MultiSymbolIndependence) {
  const Session session;
  const TimeMs open = session.open_ms();
  std::vector<Quote> quotes = {
      quote_at(open + 1'000, 0, 10.0),
      quote_at(open + 2'000, 1, 50.0),
      quote_at(open + 31'000, 1, 55.0),
  };
  const auto series = sample_bam_series(quotes, 2, session, 30);
  EXPECT_DOUBLE_EQ(series[0][1], 10.0);  // symbol 0 carries forward
  EXPECT_DOUBLE_EQ(series[1][1], 55.0);  // symbol 1 updated
}

TEST(BamSampler, StreamingMatchesLastSeen) {
  const Session session;
  BamSampler sampler(2, session, 30);
  EXPECT_FALSE(sampler.sample(0, 0).has_value());  // never quoted
  sampler.observe(quote_at(session.open_ms() + 100, 0, 25.0));
  ASSERT_TRUE(sampler.sample(0, 0).has_value());
  EXPECT_DOUBLE_EQ(*sampler.sample(0, 0), 25.0);
  EXPECT_FALSE(sampler.sample(1, 0).has_value());
}

TEST(BarAccumulator, BuildsOhlcWithinInterval) {
  const Session session;
  const TimeMs open = session.open_ms();
  BarAccumulator acc(1, session, 30);
  EXPECT_FALSE(acc.observe(quote_at(open + 1'000, 0, 10.0)).has_value());
  EXPECT_FALSE(acc.observe(quote_at(open + 5'000, 0, 13.0)).has_value());
  EXPECT_FALSE(acc.observe(quote_at(open + 9'000, 0, 9.0)).has_value());
  EXPECT_FALSE(acc.observe(quote_at(open + 20'000, 0, 11.0)).has_value());

  // First quote of interval 1 flushes interval 0's bar.
  const auto bar = acc.observe(quote_at(open + 31'000, 0, 12.0));
  ASSERT_TRUE(bar.has_value());
  EXPECT_DOUBLE_EQ(bar->open, 10.0);
  EXPECT_DOUBLE_EQ(bar->high, 13.0);
  EXPECT_DOUBLE_EQ(bar->low, 9.0);
  EXPECT_DOUBLE_EQ(bar->close, 11.0);
  EXPECT_EQ(bar->tick_count, 4);
  EXPECT_TRUE(bar->valid());
  EXPECT_EQ(bar->start_ms, open);
}

TEST(BarAccumulator, FlushReturnsOpenBars) {
  const Session session;
  BarAccumulator acc(2, session, 30);
  acc.observe(quote_at(session.open_ms() + 1'000, 0, 10.0));
  acc.observe(quote_at(session.open_ms() + 2'000, 1, 20.0));
  const auto bars = acc.flush();
  ASSERT_EQ(bars.size(), 2u);
  EXPECT_TRUE(acc.flush().empty());  // idempotent
}

TEST(BarAccumulator, IgnoresOutOfSessionQuotes) {
  const Session session;
  BarAccumulator acc(1, session, 30);
  EXPECT_FALSE(acc.observe(quote_at(0, 0, 10.0)).has_value());
  EXPECT_TRUE(acc.flush().empty());
}

}  // namespace
}  // namespace mm::md
