// Tests for the serial and parallel market-wide correlation engines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"
#include "stats/corr_engine.hpp"
#include "stats/psd.hpp"

namespace mm::stats {
namespace {

// Deterministic lockstep return stream with factor structure.
std::vector<std::vector<double>> make_stream(std::size_t symbols, std::size_t steps,
                                             std::uint64_t seed) {
  mm::Rng rng(seed);
  std::vector<std::vector<double>> stream(steps, std::vector<double>(symbols));
  for (auto& step : stream) {
    const double f = rng.normal();
    for (auto& r : step) r = 0.7 * f + rng.normal();
  }
  return stream;
}

TEST(CorrelationCalculator, NotReadyBeforeWindowFills) {
  CorrEngineConfig cfg;
  cfg.window = 10;
  CorrelationCalculator calc(cfg, 3);
  const auto stream = make_stream(3, 9, 1);
  for (const auto& r : stream) calc.push(r);
  EXPECT_FALSE(calc.ready());
  calc.push(stream[0]);
  EXPECT_TRUE(calc.ready());
}

TEST(CorrelationCalculator, MatrixHasUnitDiagonalAndSymmetry) {
  CorrEngineConfig cfg;
  cfg.window = 20;
  CorrelationCalculator calc(cfg, 4);
  for (const auto& r : make_stream(4, 50, 2)) calc.push(r);
  const auto m = calc.matrix();
  ASSERT_EQ(m.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 1.0);
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
      EXPECT_LE(m(i, j), 1.0);
      EXPECT_GE(m(i, j), -1.0);
    }
  }
}

TEST(CorrelationCalculator, FactorStructureDetected) {
  CorrEngineConfig cfg;
  cfg.window = 200;
  CorrelationCalculator calc(cfg, 3);
  for (const auto& r : make_stream(3, 400, 3)) calc.push(r);
  // 0.7 factor load on unit noise: corr = 0.49/1.49 ~ 0.33.
  const auto m = calc.matrix();
  EXPECT_NEAR(m(0, 1), 0.33, 0.15);
  EXPECT_NEAR(m(0, 2), 0.33, 0.15);
}

class EngineCtypes : public ::testing::TestWithParam<Ctype> {};
INSTANTIATE_TEST_SUITE_P(AllTypes, EngineCtypes,
                         ::testing::Values(Ctype::pearson, Ctype::maronna,
                                           Ctype::combined));

TEST_P(EngineCtypes, PairMatchesBatchEstimator) {
  CorrEngineConfig cfg;
  cfg.type = GetParam();
  cfg.window = 30;
  CorrelationCalculator calc(cfg, 3);
  std::vector<std::vector<double>> history(3);
  for (const auto& r : make_stream(3, 100, 4)) {
    calc.push(r);
    for (std::size_t i = 0; i < 3; ++i) history[i].push_back(r[i]);
  }
  std::vector<double> x(30), y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x[i] = history[0][70 + i];
    y[i] = history[2][70 + i];
  }
  const double batch = correlation(GetParam(), x.data(), y.data(), 30, cfg.maronna);
  EXPECT_NEAR(calc.pair(0, 2), batch, 1e-9);
}

TEST(CorrelationCalculator, PsdRepairProducesPsdMaronnaMatrix) {
  CorrEngineConfig cfg;
  cfg.type = Ctype::maronna;
  cfg.window = 12;  // short windows + robust pairwise = likely not PSD
  cfg.repair_psd = true;
  CorrelationCalculator calc(cfg, 8);
  for (const auto& r : make_stream(8, 40, 5)) calc.push(r);
  EXPECT_TRUE(is_psd(calc.matrix(), 1e-7));
}

class ParallelEngineRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ParallelEngineRanks, ::testing::Values(1, 2, 3, 5));

TEST_P(ParallelEngineRanks, MatchesSerialExactly) {
  const int ranks = GetParam();
  constexpr std::size_t symbols = 6;
  CorrEngineConfig cfg;
  cfg.type = Ctype::pearson;
  cfg.window = 15;
  const auto stream = make_stream(symbols, 40, 6);

  // Serial reference.
  CorrelationCalculator serial(cfg, symbols);
  SymMatrix expected;
  for (const auto& r : stream) serial.push(r);
  expected = serial.matrix();

  // Parallel under various rank counts; every rank's result must match.
  mpi::Environment::run(ranks, [&](mpi::Comm& comm) {
    ParallelCorrelationEngine engine(comm, cfg, symbols);
    SymMatrix last;
    for (const auto& r : stream) last = engine.step(r);
    ASSERT_EQ(last.size(), symbols);
    EXPECT_EQ(SymMatrix::max_abs_diff(last, expected), 0.0);
  });
}

TEST(ParallelEngine, EmptyMatrixBeforeWarmup) {
  CorrEngineConfig cfg;
  cfg.window = 50;
  mpi::Environment::run(2, [&](mpi::Comm& comm) {
    ParallelCorrelationEngine engine(comm, cfg, 4);
    const auto m = engine.step(std::vector<double>(4, 0.01));
    EXPECT_EQ(m.size(), 0u);
  });
}

TEST(TiledPairs, CoversEveryPairExactlyOnce) {
  for (const std::size_t n : {2u, 5u, 9u, 64u, 130u}) {
    for (const std::size_t tile : {0u, 1u, 3u, 64u, 200u}) {
      const auto pairs = tiled_pairs(n, tile);
      ASSERT_EQ(pairs.size(), n * (n - 1) / 2) << "n=" << n << " tile=" << tile;
      std::vector<char> seen(pairs.size(), 0);
      for (const auto& p : pairs) {
        ASSERT_LT(p.i, p.j);
        ASSERT_LT(p.j, n);
        char& slot = seen[pair_slot(n, p.i, p.j)];
        EXPECT_EQ(slot, 0) << "duplicate (" << p.i << "," << p.j << ")";
        slot = 1;
      }
    }
  }
}

TEST(TiledPairs, DegeneratesToRowMajorWhenTileCoversUniverse) {
  const auto canonical = all_pairs(7);
  for (const std::size_t tile : {0u, 7u, 100u}) {
    const auto pairs = tiled_pairs(7, tile);
    ASSERT_EQ(pairs.size(), canonical.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      EXPECT_EQ(pairs[k].i, canonical[k].i);
      EXPECT_EQ(pairs[k].j, canonical[k].j);
    }
  }
}

// The tile edge is a performance knob: it reorders the pair sweep but must
// not change a single matrix entry, serial or parallel.
TEST(CorrelationCalculator, MatrixIndependentOfPairTile) {
  constexpr std::size_t symbols = 10;
  const auto stream = make_stream(symbols, 60, 17);
  SymMatrix reference;
  for (const std::size_t tile : {0u, 1u, 3u, 4u, 64u}) {
    CorrEngineConfig cfg;
    cfg.type = Ctype::maronna;  // exercises the tiled sweep in matrix_into
    cfg.window = 25;
    cfg.pair_tile = tile;
    CorrelationCalculator calc(cfg, symbols);
    for (const auto& r : stream) calc.push(r);
    const auto m = calc.matrix();
    if (tile == 0) {
      reference = m;
    } else {
      EXPECT_EQ(SymMatrix::max_abs_diff(m, reference), 0.0) << "tile=" << tile;
    }
  }
}

TEST(ParallelEngine, MatchesSerialAcrossPairTiles) {
  constexpr std::size_t symbols = 8;
  CorrEngineConfig cfg;
  cfg.type = Ctype::pearson;
  cfg.window = 12;
  const auto stream = make_stream(symbols, 30, 19);
  CorrelationCalculator serial(cfg, symbols);
  for (const auto& r : stream) serial.push(r);
  const auto expected = serial.matrix();

  for (const std::size_t tile : {1u, 3u, 8u}) {
    cfg.pair_tile = tile;
    mpi::Environment::run(3, [&](mpi::Comm& comm) {
      ParallelCorrelationEngine engine(comm, cfg, symbols);
      SymMatrix last;
      for (const auto& r : stream) last = engine.step(r);
      ASSERT_EQ(last.size(), symbols);
      EXPECT_EQ(SymMatrix::max_abs_diff(last, expected), 0.0) << "tile=" << tile;
    });
  }
}

TEST(ParallelEngine, ShardsCoverAllPairsExactlyOnce) {
  constexpr std::size_t symbols = 9;  // 36 pairs
  mpi::Environment::run(4, [&](mpi::Comm& comm) {
    CorrEngineConfig cfg;
    cfg.window = 5;
    ParallelCorrelationEngine engine(comm, cfg, symbols);
    const auto total = mpi::allreduce_value(
        comm, static_cast<int>(engine.local_pair_count()), mpi::Sum{});
    EXPECT_EQ(total, 36);
    // Balanced within 1.
    EXPECT_GE(engine.local_pair_count(), 36u / 4);
    EXPECT_LE(engine.local_pair_count(), 36u / 4 + 1);
  });
}

}  // namespace
}  // namespace mm::stats
