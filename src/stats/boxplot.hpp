// Box-plot statistics for Figure 2.
//
// Matches the paper's description: "the central mark is the median, the edges
// of the box are the 25th and 75th percentiles, the whiskers extend to the
// most extreme data points not considered outliers, and outliers are plotted
// individually" — i.e. Tukey's convention with a 1.5 × IQR fence.
#pragma once

#include <string>
#include <vector>

namespace mm::stats {

struct BoxPlot {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;   // smallest point >= q1 - 1.5 IQR
  double whisker_high = 0.0;  // largest point <= q3 + 1.5 IQR
  std::vector<double> outliers;
};

BoxPlot box_plot(std::vector<double> xs, double fence = 1.5);

// Render a horizontal ASCII box plot scaled to [axis_min, axis_max] over
// `width` characters:  |---[  =|=  ]-----|  * *
std::string render_ascii(const BoxPlot& box, double axis_min, double axis_max,
                         std::size_t width);

}  // namespace mm::stats
