// Tests for walk-forward out-of-sample evaluation.
#include <gtest/gtest.h>

#include "core/walkforward.hpp"

namespace mm::core {
namespace {

WalkForwardConfig tiny_config() {
  WalkForwardConfig cfg;
  cfg.experiment.symbols = 4;
  cfg.experiment.days = 4;
  cfg.experiment.generator.quote_rate = 0.15;
  cfg.formation_days = 1;
  cfg.objective = Objective::mean_return;
  return cfg;
}

TEST(WalkForward, FoldStructure) {
  const auto result = walk_forward(tiny_config());
  // 4 days, 1-day blocks, stepping by 1: folds start at days 0, 1, 2.
  ASSERT_EQ(result.folds.size(), 3u);
  for (std::size_t f = 0; f < result.folds.size(); ++f) {
    EXPECT_EQ(result.folds[f].formation_first_day, static_cast<int>(f));
    EXPECT_EQ(result.folds[f].evaluation_first_day, static_cast<int>(f) + 1);
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_LT(result.folds[f].chosen_level[c], 14u);
  }
}

TEST(WalkForward, InSampleScoreIsBlockMaximum) {
  // The chosen level's in-sample score must dominate any other level's score
  // over the same formation block — verified indirectly via determinism: the
  // same config picks the same levels.
  const auto a = walk_forward(tiny_config());
  const auto b = walk_forward(tiny_config());
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(a.folds[f].chosen_level[c], b.folds[f].chosen_level[c]);
      EXPECT_DOUBLE_EQ(a.folds[f].in_sample_score[c], b.folds[f].in_sample_score[c]);
    }
}

TEST(WalkForward, MeansAggregateFolds) {
  const auto result = walk_forward(tiny_config());
  for (std::size_t c = 0; c < 3; ++c) {
    double sum_in = 0.0, sum_out = 0.0;
    for (const auto& fold : result.folds) {
      sum_in += fold.in_sample_score[c];
      sum_out += fold.out_of_sample_score[c];
    }
    const auto nf = static_cast<double>(result.folds.size());
    EXPECT_NEAR(result.mean_in_sample[c], sum_in / nf, 1e-12);
    EXPECT_NEAR(result.mean_out_of_sample[c], sum_out / nf, 1e-12);
  }
}

TEST(WalkForward, SelectionBiasShowsUp) {
  // In-sample scores select the max over 14 levels, so on average they
  // exceed the out-of-sample realization of the same level (the classic
  // overfitting gap). With few folds this is only a tendency; assert the
  // aggregate over treatments.
  const auto result = walk_forward(tiny_config());
  double gap = 0.0;
  for (std::size_t c = 0; c < 3; ++c)
    gap += result.mean_in_sample[c] - result.mean_out_of_sample[c];
  EXPECT_GT(gap, 0.0);
}

TEST(WalkForward, RenderListsFoldsAndPenalty) {
  const auto cfg = tiny_config();
  const auto result = walk_forward(cfg);
  const auto text = render_walk_forward(result, cfg);
  EXPECT_NE(text.find("walk-forward"), std::string::npos);
  EXPECT_NE(text.find("out-of-sample"), std::string::npos);
  EXPECT_NE(text.find("overfitting penalty"), std::string::npos);
  EXPECT_NE(text.find("Maronna"), std::string::npos);
}

}  // namespace
}  // namespace mm::core
