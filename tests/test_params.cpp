// Tests for StrategyParams validation and the Table I parameter grid.
#include <gtest/gtest.h>

#include <set>

#include "core/params.hpp"

namespace mm::core {
namespace {

TEST(StrategyParams, BaseIsValid) {
  EXPECT_TRUE(ParamGrid::base().validate().has_value());
}

TEST(StrategyParams, RejectsBadValues) {
  auto expect_invalid = [](auto&& mutate) {
    StrategyParams p = ParamGrid::base();
    mutate(p);
    EXPECT_FALSE(p.validate().has_value());
  };
  expect_invalid([](StrategyParams& p) { p.delta_s = 0; });
  expect_invalid([](StrategyParams& p) { p.min_correlation = 1.5; });
  expect_invalid([](StrategyParams& p) { p.min_correlation = -0.1; });
  expect_invalid([](StrategyParams& p) { p.corr_window = 1; });
  expect_invalid([](StrategyParams& p) { p.avg_window = 0; });
  expect_invalid([](StrategyParams& p) { p.divergence_window = 0; });
  expect_invalid([](StrategyParams& p) { p.divergence = 0.0; });
  expect_invalid([](StrategyParams& p) { p.divergence = 1.0; });
  expect_invalid([](StrategyParams& p) { p.retracement = 0.0; });
  expect_invalid([](StrategyParams& p) { p.retracement = 1.0; });
  expect_invalid([](StrategyParams& p) { p.spread_window = 0; });
  expect_invalid([](StrategyParams& p) { p.max_holding = 0; });
  expect_invalid([](StrategyParams& p) { p.no_entry_before_close = -1; });
  expect_invalid([](StrategyParams& p) { p.stop_loss = -0.1; });
  expect_invalid([](StrategyParams& p) { p.cost_per_share = -0.01; });
  expect_invalid([](StrategyParams& p) { p.slippage_frac = 0.5; });
}

TEST(StrategyParams, DescribeMentionsKeyFields) {
  const auto text = ParamGrid::base().describe();
  EXPECT_NE(text.find("M=100"), std::string::npos);
  EXPECT_NE(text.find("W=60"), std::string::npos);
  EXPECT_NE(text.find("HP=30"), std::string::npos);
}

TEST(ParamGrid, FourteenLevels) {
  // "14 different parameter vectors of the form {ds, M, W, d, l, RT, HP, ST, Y}".
  EXPECT_EQ(ParamGrid().levels().size(), 14u);
}

TEST(ParamGrid, FortyTwoStrategies) {
  // 14 levels x 3 correlation types = the paper's 42 parameter sets.
  const auto all = ParamGrid().all();
  EXPECT_EQ(all.size(), 42u);
  int per_ctype[3] = {0, 0, 0};
  for (const auto& p : all) ++per_ctype[static_cast<int>(p.ctype)];
  EXPECT_EQ(per_ctype[0], 14);
  EXPECT_EQ(per_ctype[1], 14);
  EXPECT_EQ(per_ctype[2], 14);
}

TEST(ParamGrid, AllLevelsValidAndDistinct) {
  const ParamGrid grid;
  std::set<std::string> described;
  for (const auto& level : grid.levels()) {
    EXPECT_TRUE(level.validate().has_value());
    EXPECT_TRUE(described.insert(level.describe()).second)
        << "duplicate level: " << level.describe();
  }
}

TEST(ParamGrid, ValuesComeFromTableI) {
  const ParamGrid grid;
  const std::set<std::int64_t> m_allowed = {50, 100, 200};
  const std::set<std::int64_t> w_allowed = {60, 120};
  const std::set<std::int64_t> y_allowed = {10, 20};
  const std::set<std::int64_t> hp_allowed = {30, 40};
  for (const auto& level : grid.levels()) {
    EXPECT_EQ(level.delta_s, 30);
    EXPECT_TRUE(m_allowed.count(level.corr_window)) << level.corr_window;
    EXPECT_TRUE(w_allowed.count(level.avg_window));
    EXPECT_TRUE(y_allowed.count(level.divergence_window));
    EXPECT_TRUE(hp_allowed.count(level.max_holding));
    EXPECT_EQ(level.spread_window, 60);
    EXPECT_EQ(level.no_entry_before_close, 20);
    EXPECT_GE(level.divergence, 0.0001);
    EXPECT_LE(level.divergence, 0.0010);
  }
}

TEST(ParamGrid, DistinctCorrWindows) {
  const auto windows = ParamGrid().distinct_corr_windows();
  EXPECT_EQ(windows, (std::vector<std::int64_t>{50, 100, 200}));
}

}  // namespace
}  // namespace mm::core
