// Tests for the quote feed abstractions (collectors' data sources).
#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "marketdata/feed.hpp"
#include "marketdata/generator.hpp"

namespace mm::md {
namespace {

Quote at(TimeMs ts, SymbolId sym) {
  Quote q;
  q.ts_ms = ts;
  q.symbol = sym;
  q.bid = 10.0;
  q.ask = 10.1;
  return q;
}

TEST(VectorFeed, YieldsAllThenEnds) {
  VectorFeed feed({at(1, 0), at(2, 0), at(3, 0)});
  EXPECT_EQ(feed.next()->ts_ms, 1);
  EXPECT_EQ(feed.next()->ts_ms, 2);
  EXPECT_EQ(feed.next()->ts_ms, 3);
  EXPECT_FALSE(feed.next().has_value());
  EXPECT_FALSE(feed.next().has_value());  // stays ended
}

TEST(MergingFeed, MergesByTimestamp) {
  std::vector<std::unique_ptr<QuoteFeed>> feeds;
  feeds.push_back(std::make_unique<VectorFeed>(
      std::vector<Quote>{at(1, 0), at(4, 0), at(6, 0)}));
  feeds.push_back(std::make_unique<VectorFeed>(
      std::vector<Quote>{at(2, 1), at(3, 1), at(5, 1)}));
  MergingFeed merged(std::move(feeds));
  std::vector<TimeMs> order;
  while (auto q = merged.next()) order.push_back(q->ts_ms);
  EXPECT_EQ(order, (std::vector<TimeMs>{1, 2, 3, 4, 5, 6}));
}

TEST(MergingFeed, TieBreaksByFeedIndex) {
  std::vector<std::unique_ptr<QuoteFeed>> feeds;
  feeds.push_back(std::make_unique<VectorFeed>(std::vector<Quote>{at(5, 0)}));
  feeds.push_back(std::make_unique<VectorFeed>(std::vector<Quote>{at(5, 1)}));
  MergingFeed merged(std::move(feeds));
  EXPECT_EQ(merged.next()->symbol, 0u);
  EXPECT_EQ(merged.next()->symbol, 1u);
  EXPECT_FALSE(merged.next().has_value());
}

TEST(MergingFeed, HandlesEmptyFeeds) {
  std::vector<std::unique_ptr<QuoteFeed>> feeds;
  feeds.push_back(std::make_unique<VectorFeed>(std::vector<Quote>{}));
  feeds.push_back(std::make_unique<VectorFeed>(std::vector<Quote>{at(1, 0)}));
  feeds.push_back(std::make_unique<VectorFeed>(std::vector<Quote>{}));
  MergingFeed merged(std::move(feeds));
  EXPECT_EQ(merged.next()->ts_ms, 1);
  EXPECT_FALSE(merged.next().has_value());
}

TEST(ThrottledFeed, PacesRelativeToStreamTime) {
  // 3 quotes spanning 1000 ms of stream time at 100x speedup -> ~10 ms wall.
  auto inner = std::make_unique<VectorFeed>(
      std::vector<Quote>{at(0, 0), at(500, 0), at(1000, 0)});
  ThrottledFeed feed(std::move(inner), 100.0);
  Stopwatch watch;
  int count = 0;
  while (feed.next()) ++count;
  EXPECT_EQ(count, 3);
  const double elapsed = watch.elapsed_seconds();
  EXPECT_GE(elapsed, 0.008);
  EXPECT_LT(elapsed, 0.5);  // generous upper bound for slow CI
}

TEST(ThrottledFeed, VeryHighSpeedupIsEffectivelyInstant) {
  auto inner = std::make_unique<VectorFeed>(
      std::vector<Quote>{at(0, 0), at(23'400'000, 0)});  // full session span
  ThrottledFeed feed(std::move(inner), 1e9);
  Stopwatch watch;
  while (feed.next()) {
  }
  EXPECT_LT(watch.elapsed_seconds(), 0.5);
}

}  // namespace
}  // namespace mm::md
