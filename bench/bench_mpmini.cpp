// Microbenchmarks for the mpmini message-passing substrate: point-to-point
// latency/throughput and collective costs across world sizes.
#include <benchmark/benchmark.h>

#include "mpmini/collectives.hpp"
#include "mpmini/environment.hpp"

namespace {

using namespace mm::mpi;

void BM_PingPong(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  std::int64_t round_trips = 0;
  for (auto _ : state) {
    state.PauseTiming();
    constexpr int rounds = 64;
    state.ResumeTiming();
    Environment::run(2, [&](Comm& comm) {
      std::vector<std::uint8_t> payload(payload_size, 0x5a);
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, payload);
          (void)comm.recv(1, 2);
        } else {
          (void)comm.recv(0, 1);
          comm.send(0, 2, payload);
        }
      }
    });
    round_trips += rounds;
  }
  state.SetItemsProcessed(round_trips);
  state.SetBytesProcessed(round_trips * 2 * static_cast<std::int64_t>(payload_size));
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(1024)->Arg(64 * 1024);

void BM_SendThroughput(benchmark::State& state) {
  const auto messages = 4096;
  for (auto _ : state) {
    Environment::run(2, [&](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < messages; ++i) comm.send_value<int>(1, 1, i);
      } else {
        for (int i = 0; i < messages; ++i) (void)comm.recv(0, 1);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_SendThroughput);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr int rounds = 128;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_BcastVector(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto doubles = static_cast<std::size_t>(state.range(1));
  constexpr int rounds = 32;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      std::vector<double> data(doubles, 1.0);
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(bcast_vector(comm, data, 0));
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  state.SetBytesProcessed(state.iterations() * rounds *
                          static_cast<std::int64_t>(doubles * sizeof(double)));
}
BENCHMARK(BM_BcastVector)->Args({4, 64})->Args({4, 4096})->Args({8, 4096});

void BM_AllreduceSum(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr int rounds = 64;
  for (auto _ : state) {
    Environment::run(ranks, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(
            allreduce_value(comm, static_cast<double>(comm.rank()), Sum{}));
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8);

void BM_EnvironmentSpawn(benchmark::State& state) {
  // Cost of standing up and tearing down a world (thread spawn + join).
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Environment::run(ranks, [](Comm&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvironmentSpawn)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
