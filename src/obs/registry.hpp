// mm::obs — low-overhead telemetry: named counters, gauges and fixed-bucket
// histograms.
//
// Hot-path contract: an update is one thread-local shard lookup plus one
// relaxed atomic RMW on a cache-line-aligned slot — no locks, no allocation,
// no stronger ordering (bench_obs keeps the counter increment under 10 ns).
// Shard counts are powers of two so the thread → shard map is a mask; values
// are aggregated across shards only on the (cold) read side.
//
// Registration (Registry::counter/gauge/histogram) takes a mutex and may
// allocate — do it once at component setup and keep the returned reference;
// references stay valid for the registry's lifetime.
//
// Compile-out: building with MM_OBS_ENABLED=0 (the MM_OBS_ENABLED=OFF CMake
// option) swaps every type for a field-free no-op with the identical API, so
// call sites compile unchanged and the optimizer deletes them. Snapshot (the
// cold read-side value type) stays real in both modes; a disabled registry
// just produces an empty one.
#pragma once

#ifndef MM_OBS_ENABLED
#define MM_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>
#include <vector>

#if MM_OBS_ENABLED
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#endif

namespace mm::obs {

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

// One metric's aggregated value at snapshot time (cold side; plain data).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::counter;
  std::int64_t value = 0;   // counter total or gauge value
  std::uint64_t count = 0;  // histogram: number of recorded samples
  std::int64_t sum = 0;     // histogram: sum of recorded samples
  // Histogram: ascending upper bounds; buckets has bounds.size() + 1 entries,
  // the last being the overflow bucket (see Histogram for the boundary rule).
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;

  double mean() const { return count > 0 ? static_cast<double>(sum) / count : 0.0; }

  // Interpolated quantile estimate (q in [0, 1]) for a histogram: the rank
  // q*count is located in the cumulative bucket counts and the value is
  // linearly interpolated inside that bucket's [lower, upper) range. Samples
  // in the overflow bucket are pinned to the last bound (the estimate cannot
  // exceed it), mirroring Prometheus's histogram_quantile. Returns 0 when the
  // histogram is empty, mean() when it has no bounds.
  double quantile(double q) const;
};

struct Snapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* find(const std::string& name) const;
  // Sum of `value` over counters whose name starts with `prefix`.
  std::int64_t counter_total(const std::string& prefix) const;
  // Sum of `value` over counters whose name ends with `suffix`.
  std::int64_t counter_suffix_total(const std::string& suffix) const;
  std::string to_string() const;  // human-readable table
  std::string to_json() const;    // {"metrics": [...]}

  // Monotonic-delta view: this snapshot minus `base`. Counter values and
  // histogram counts/sums/buckets subtract (clamped at zero, so a registry
  // reset between the two snapshots degrades to the current values); gauges
  // are levels and keep their current value. Metrics absent from `base` pass
  // through unchanged. This is how one registry serves both a long-lived
  // Prometheus scrape (monotonic totals) and per-run / per-interval views
  // (deltas) without destructive resets.
  Snapshot delta(const Snapshot& base) const;
};

// Default histogram bounds for nanosecond latencies: powers of four from
// 1 µs to ~4.3 s (12 bounds, 13 buckets including overflow).
std::vector<std::int64_t> default_latency_bounds_ns();

#if MM_OBS_ENABLED

inline constexpr std::size_t kShardCount = 16;  // power of two

namespace detail {

// Per-thread shard index: hashed once per thread, then a TLS read per update.
inline std::size_t shard_index() noexcept {
  static thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kShardCount - 1);
  return index;
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> value{0};
};

}  // namespace detail

// Monotonic event counter. add() is wait-free and uses relaxed ordering; the
// total is exact (every add lands in exactly one shard) but a concurrent
// value() read may miss in-flight updates.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 shards_[kShardCount];
};

// Last-writer-wins level (set/add) with a monotonic watermark helper
// (max_of). Unsharded: gauges record state, not per-event traffic.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.value.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t delta) noexcept {
    value_.value.fetch_add(delta, std::memory_order_relaxed);
  }

  // Raise the gauge to `v` if it is below it (high-watermark semantics).
  void max_of(std::int64_t v) noexcept {
    std::int64_t seen = value_.value.load(std::memory_order_relaxed);
    while (seen < v &&
           !value_.value.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.value.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.value.store(0, std::memory_order_relaxed); }

 private:
  detail::PaddedI64 value_;
};

// Fixed-bucket histogram over int64 samples (latencies in ns by convention).
//
// Boundary rule: for ascending bounds b0 < b1 < ... < b{B-1},
//   bucket 0      counts samples v with            v <  b0
//   bucket i      counts samples v with  b{i-1} <= v <  bi   (0 < i < B)
//   bucket B      counts samples v with  b{B-1} <= v         (overflow)
// i.e. every bucket's lower bound is inclusive and its upper bound exclusive.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t v) noexcept {
    const std::size_t shard = detail::shard_index();
    counts_[shard * stride_ + bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sums_[shard].value.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::size_t bucket_count() const { return bounds_.size() + 1; }

  // Aggregated across shards (relaxed; exact once writers are quiescent).
  std::vector<std::uint64_t> bucket_values() const;
  std::uint64_t count() const;
  std::int64_t sum() const;
  void reset() noexcept;

 private:
  std::size_t bucket_of(std::int64_t v) const noexcept {
    // Linear scan: latency histograms have ~a dozen buckets and the common
    // sample lands early; a branchy binary search is not faster at this size.
    std::size_t i = 0;
    for (const auto bound : bounds_) {
      if (v < bound) return i;
      ++i;
    }
    return i;  // overflow bucket
  }

  std::vector<std::int64_t> bounds_;
  std::size_t stride_ = 0;  // per-shard row length, padded to a cache line
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // [shard * stride_ + b]
  detail::PaddedI64 sums_[kShardCount];
};

// Named metric registry. Lookup/creation is mutex-guarded (cold path);
// returned references are stable for the registry's lifetime, so components
// resolve their handles once and update lock-free afterwards.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Bounds are fixed at first registration; later calls with the same name
  // return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds = default_latency_bounds_ns());

  // Aggregate every metric (name-sorted). Safe concurrently with updates;
  // values are a relaxed point-in-time view.
  Snapshot snapshot() const;

  // Zero every metric. NOT safe concurrently with updates; meant for reuse
  // between runs in tests and benches.
  void reset();

  // Process-wide default registry for components without an explicit one.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

#else  // !MM_OBS_ENABLED — field-free no-ops with the identical API.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void max_of(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> = {}) {}
  void record(std::int64_t) noexcept {}
  const std::vector<std::int64_t>& bounds() const {
    static const std::vector<std::int64_t> empty;
    return empty;
  }
  std::size_t bucket_count() const { return 0; }
  std::vector<std::uint64_t> bucket_values() const { return {}; }
  std::uint64_t count() const { return 0; }
  std::int64_t sum() const { return 0; }
  void reset() noexcept {}
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<std::int64_t> = {}) {
    return histogram_;
  }
  Snapshot snapshot() const { return {}; }
  void reset() {}
  static Registry& global();

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_{std::vector<std::int64_t>{}};
};

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
