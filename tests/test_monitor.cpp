// Heartbeat monitor tests: liveness transitions under a synthetic clock
// (deterministic, no sleeps on the assertion path), pulse/guard behaviour on
// real threads, and the end-to-end acceptance path — a fault-plan kill of a
// pipeline stage detected by the heartbeat monitor within 2x the heartbeat
// interval, with a flight-recorder bundle holding the dead rank's trace ring
// and crash report.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"
#include "obs/heartbeat.hpp"

namespace mm::obs {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

#if MM_OBS_ENABLED

// Synthetic-clock fixture: the monitor's scan() takes the time explicitly,
// so transitions are exact functions of (beats written, scan times) with no
// wall clock involved. interval = 1000 "ns" keeps the arithmetic readable.
class MonitorClock : public ::testing::Test {
 protected:
  static constexpr std::int64_t kInterval = 1000;

  MonitorClock() : board_(3), monitor_(board_, make_config()) {}

  static HeartbeatMonitor::Config make_config() {
    HeartbeatMonitor::Config cfg;
    cfg.interval = nanoseconds{kInterval};
    cfg.suspect_after = 1.0;
    cfg.dead_after = 1.5;
    return cfg;
  }

  void beat(int rank) {
    board_.slot(rank)->store(++seq_[static_cast<std::size_t>(rank)],
                             std::memory_order_relaxed);
  }

  HeartbeatBoard board_;
  HeartbeatMonitor monitor_;
  std::uint64_t seq_[3] = {0, 0, 0};
};

TEST_F(MonitorClock, SilenceDegradesUpSuspectDownWithinTwoIntervals) {
  int deaths = 0;
  int dead_rank = -1;
  monitor_.on_dead = [&](int rank, const RankHealth& h) {
    ++deaths;
    dead_rank = rank;
    EXPECT_EQ(h.state, Liveness::down);
  };

  monitor_.scan(0);  // seeds last_seen for every rank
  beat(0);
  beat(1);
  monitor_.scan(500);
  EXPECT_EQ(monitor_.health(0).state, Liveness::up);
  EXPECT_EQ(monitor_.health(1).state, Liveness::up);
  EXPECT_EQ(monitor_.health(2).state, Liveness::up);  // 500 < 1.0x interval

  // Rank 2 silent past 1.0x interval: suspected. The beating ranks last
  // advanced at t=500, so they are comfortably inside the window.
  monitor_.scan(1100);
  EXPECT_EQ(monitor_.health(0).state, Liveness::up);
  EXPECT_EQ(monitor_.health(2).state, Liveness::suspect);
  EXPECT_EQ(deaths, 0);

  // Past 1.5x interval: down, detection timestamped, callback fired — and the
  // gap between the last observed beat and detection is under 2x interval
  // (the ISSUE acceptance bound).
  monitor_.scan(1600);
  const RankHealth dead = monitor_.health(2);
  EXPECT_EQ(dead.state, Liveness::down);
  EXPECT_EQ(dead.detected_ns, 1600);
  EXPECT_LE(dead.detected_ns - dead.last_seen_ns, 2 * kInterval);
  EXPECT_EQ(deaths, 1);
  EXPECT_EQ(dead_rank, 2);
  ASSERT_EQ(monitor_.dead_ranks().size(), 1u);
  EXPECT_EQ(monitor_.dead_ranks()[0], 2);

  // Ranks 0/1 crossed into suspect at t=1600 (silent 1100 > interval)...
  EXPECT_EQ(monitor_.health(0).state, Liveness::suspect);
  // ...and a fresh beat recovers a suspect back to up.
  beat(0);
  monitor_.scan(1700);
  EXPECT_EQ(monitor_.health(0).state, Liveness::up);

  // Down is sticky: a zombie beat never resurrects a dead rank, and on_dead
  // does not fire again.
  beat(2);
  monitor_.scan(1800);
  EXPECT_EQ(monitor_.health(2).state, Liveness::down);
  EXPECT_EQ(deaths, 1);
}

TEST_F(MonitorClock, IdleButAliveRankIsNeverSuspected) {
  monitor_.scan(0);
  // A blocked-in-recv rank beats once per interval from the mailbox wait
  // loop. Simulate exactly that cadence over many intervals: never suspected.
  std::int64_t now = 0;
  for (int i = 0; i < 20; ++i) {
    beat(0);
    now += kInterval;
    monitor_.scan(now);
    ASSERT_EQ(monitor_.health(0).state, Liveness::up) << "interval " << i;
    ASSERT_EQ(monitor_.health(0).missed_scans, 0u);
  }
}

TEST_F(MonitorClock, RetirementOutranksSilence) {
  monitor_.scan(0);
  beat(1);
  monitor_.scan(100);
  board_.retire(1);
  // Long past the dead threshold — but the slot is retired, so the verdict
  // is done, never down, no matter how late the scan runs.
  monitor_.scan(100 * kInterval);
  EXPECT_EQ(monitor_.health(1).state, Liveness::done);
  for (const int r : monitor_.dead_ranks()) EXPECT_NE(r, 1);  // others may die
  // Done is terminal: further scans leave it alone.
  monitor_.scan(200 * kInterval);
  EXPECT_EQ(monitor_.health(1).state, Liveness::done);
}

TEST(MonitorThreads, SettleClassifiesRetiredVersusSilentRanks) {
  HeartbeatBoard board(2);
  HeartbeatMonitor::Config cfg;
  cfg.interval = milliseconds{5};
  HeartbeatMonitor monitor(board, cfg);

  // Rank 0 completes cleanly (guard retires); rank 1 is "killed": mark_dead
  // turns its guard's retire() into a no-op, so the board sees silence.
  std::thread clean([&board] {
    PulseGuard guard(&board, 0, milliseconds{5});
    pulse_this_thread().beat();
    guard.retire();
  });
  std::thread killed([&board] {
    PulseGuard guard(&board, 1, milliseconds{5});
    pulse_this_thread().beat();
    pulse_this_thread().mark_dead();
    guard.retire();  // must not retire: the rank died, it did not finish
  });
  clean.join();
  killed.join();

  // Cold settle (monitor never start()ed drives its own scans).
  const int down = monitor.settle();
  EXPECT_EQ(down, 1);
  EXPECT_EQ(monitor.health(0).state, Liveness::done);
  EXPECT_EQ(monitor.health(1).state, Liveness::down);
}

TEST(MonitorThreads, UnarmedPulseBeatsAreFreeAndInert) {
  // Threads outside a run (no PulseGuard) call beat() from the transport hot
  // path; it must be a harmless no-op.
  Pulse& pulse = pulse_this_thread();
  EXPECT_FALSE(pulse.armed());
  pulse.beat();
  pulse.beat();
  EXPECT_FALSE(pulse.armed());
}

#endif  // MM_OBS_ENABLED

// --- end-to-end: pipeline kill -> heartbeat detection -> flight bundle -----

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

engine::PipelineConfig live_base_config() {
  engine::PipelineConfig cfg;
  cfg.symbols = 4;
  core::StrategyParams p = core::ParamGrid::base();
  p.ctype = stats::Ctype::pearson;
  p.divergence = 0.0005;
  cfg.strategies = {p};
  cfg.batch_size = 64;  // chatty transport: a mid-day kill step lands
  return cfg;
}

// Rank layout (one rank per node, add order): collector=0, cleaner=1,
// snapshot=2, correlation=3, strategy-0=4, master=5.
constexpr int kStrategyRank = 4;

TEST(LiveMonitorPipeline, KilledStageDetectedAndFlightBundleWritten) {
  md::Universe universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  const md::SyntheticDay day(universe, gen, 0);

  const auto flight_dir =
      std::filesystem::temp_directory_path() /
      ("mm_flight_" + std::to_string(static_cast<long long>(::getpid())));
  std::filesystem::remove_all(flight_dir);

  TraceSink sink;
  engine::PipelineConfig cfg = live_base_config();
  cfg.fault.kill_rank = kStrategyRank;
  cfg.fault.kill_at_op = 150;
  cfg.stage_deadline = milliseconds{1000};
  cfg.replica_deadline = milliseconds{1000};
  cfg.trace = &sink;
  cfg.live.enabled = true;
  cfg.live.heartbeat_interval = milliseconds{200};
  cfg.live.snapshot_period = milliseconds{100};
  cfg.live.http_port = -1;  // no listener in this test
  cfg.live.flight_dir = flight_dir.string();

  const auto result = engine::run_pipeline(cfg, universe, day.quotes());
  EXPECT_TRUE(result.degraded);

#if MM_OBS_ENABLED
  const auto& live = result.live;
  ASSERT_TRUE(live.enabled);
  ASSERT_EQ(live.health.size(), 6u);
  ASSERT_EQ(live.rank_nodes.size(), 6u);
  EXPECT_EQ(live.rank_nodes[kStrategyRank], "strategy-0");

  // The kill was DETECTED by the heartbeat monitor — the rank is down, not
  // done — and detection came within 2x the heartbeat interval of the last
  // observed beat (the ISSUE acceptance bound).
  const RankHealth& victim = live.health[kStrategyRank];
  EXPECT_EQ(victim.state, Liveness::down);
  const std::int64_t interval_ns = cfg.live.heartbeat_interval.count();
  EXPECT_GT(victim.detected_ns, 0);
  EXPECT_LE(victim.detected_ns - victim.last_seen_ns, 2 * interval_ns);

  // The crash set names the victim by rank and node.
  bool victim_reported = false;
  for (const auto& crash : live.crashes) {
    if (crash.rank != kStrategyRank) continue;
    victim_reported = true;
    EXPECT_EQ(crash.node, "strategy-0");
  }
  EXPECT_TRUE(victim_reported);

  // Flight bundle: all four artifacts present, the crash report names the
  // dead rank, and the trace holds the victim's ring (rows are keyed by
  // "pid":<rank> in the Chrome JSON).
  ASSERT_FALSE(live.flight_bundle.empty());
  const std::filesystem::path bundle(live.flight_bundle);
  ASSERT_TRUE(std::filesystem::is_directory(bundle));
  for (const char* name :
       {"crash_report.json", "trace.json", "snapshots.json", "metrics.prom"})
    EXPECT_TRUE(std::filesystem::is_regular_file(bundle / name)) << name;

  const std::string report = read_file(bundle / "crash_report.json");
  EXPECT_NE(report.find("\"rank\":4"), std::string::npos);
  EXPECT_NE(report.find("strategy-0"), std::string::npos);
  EXPECT_NE(report.find("\"state\":\"down\""), std::string::npos);

  const std::string trace = read_file(bundle / "trace.json");
  EXPECT_NE(trace.find("\"pid\":4"), std::string::npos);

  const std::string prom = read_file(bundle / "metrics.prom");
  EXPECT_NE(prom.find("mm_mpmini_send_messages_total"), std::string::npos);

  std::filesystem::remove_all(flight_dir);
#endif  // MM_OBS_ENABLED
}

TEST(LiveMonitorPipeline, HealthyRunEndsAllDoneWithNoBundle) {
  md::Universe universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  const md::SyntheticDay day(universe, gen, 1);

  engine::PipelineConfig cfg = live_base_config();
  cfg.live.enabled = true;
  cfg.live.heartbeat_interval = milliseconds{100};
  cfg.live.http_port = -1;

  const auto result = engine::run_pipeline(cfg, universe, day.quotes());
  EXPECT_FALSE(result.degraded);

#if MM_OBS_ENABLED
  ASSERT_TRUE(result.live.enabled);
  ASSERT_EQ(result.live.health.size(), 6u);
  for (const auto& h : result.live.health)
    EXPECT_EQ(h.state, Liveness::done) << liveness_name(h.state);
  EXPECT_TRUE(result.live.crashes.empty());
  EXPECT_TRUE(result.live.flight_bundle.empty());
#else
  EXPECT_FALSE(result.live.enabled);
#endif
}

// Shared-registry hygiene (regression): two back-to-back runs on ONE registry
// must each report only their own traffic in result.metrics — run 2's delta
// matches run 1's instead of doubling.
TEST(LiveMonitorPipeline, BackToBackRunsOnSharedRegistryDoNotBleed) {
  md::Universe universe = md::make_universe(4);
  md::GeneratorConfig gen;
  gen.quote_rate = 0.15;
  const md::SyntheticDay day(universe, gen, 2);

  Registry shared;
  engine::PipelineConfig cfg = live_base_config();
  cfg.metrics = &shared;

  const auto first = engine::run_pipeline(cfg, universe, day.quotes());
  const auto second = engine::run_pipeline(cfg, universe, day.quotes());
  ASSERT_FALSE(first.degraded);
  ASSERT_FALSE(second.degraded);

#if MM_OBS_ENABLED
  const std::int64_t sent1 = first.metrics.counter_total("mpmini.send.messages");
  const std::int64_t sent2 = second.metrics.counter_total("mpmini.send.messages");
  ASSERT_GT(sent1, 0);
  // Same quotes, same config: comparable traffic (exact counts can wiggle
  // with flow-control timing), and definitely not ~2x the first run.
  EXPECT_LT(sent2, sent1 + sent1 / 2);
  EXPECT_GT(sent2, sent1 / 2);
  // The registry itself accumulated both runs — the deltas partition it.
  EXPECT_EQ(shared.snapshot().counter_total("mpmini.send.messages"), sent1 + sent2);
#endif
}

}  // namespace
}  // namespace mm::obs
