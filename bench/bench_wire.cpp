// Microbenchmarks for the mmq wire format hot path. The headline number is
// BM_ParseQuotes: feed a pre-encoded quote stream through the zero-copy
// FrameParser + decode_quote in MTU-ish chunks, budgeted at over 10 million
// quotes per second single-threaded (items_per_second in BENCH_wire.json).
// BM_EncodeQuotes measures the writer side, BM_ParseQuotesUnaligned forces a
// frame to straddle every chunk boundary so the fixed carry buffer is on the
// hot path, and BM_TcpFetchDay prices a whole loopback session (connect,
// hello, stream, end_of_day) per day.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "marketdata/types.hpp"
#include "wire/feed.hpp"
#include "wire/format.hpp"
#include "wire/parser.hpp"
#include "wire/quote_source.hpp"

namespace {

using namespace mm;
using namespace mm::wire;

constexpr std::uint32_t kSymbols = 512;

md::Quote make_quote(std::uint64_t i) {
  md::Quote q{};
  q.ts_ms = static_cast<md::TimeMs>(34'200'000 + i);
  q.symbol = static_cast<std::uint32_t>(i % kSymbols);
  q.bid = 100.0 + 0.01 * static_cast<double>(i % 97);
  q.ask = q.bid + 0.01;
  q.bid_size = 100;
  q.ask_size = 200;
  return q;
}

std::vector<std::uint8_t> encoded_day(std::size_t quotes) {
  FrameWriter w;
  for (std::size_t i = 0; i < quotes; ++i) w.quote(make_quote(i));
  return {w.bytes().begin(), w.bytes().end()};
}

// Parse a pre-encoded stream in `chunk`-byte slices, decoding every quote.
// This is exactly the WireQuoteSource receive loop minus the socket.
void parse_stream(const std::vector<std::uint8_t>& stream, std::size_t chunk,
                  std::uint64_t* quotes_out) {
  FrameParser parser;
  md::Quote q;
  FrameView v;
  std::uint64_t quotes = 0;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - off);
    parser.feed(stream.data() + off, n);
    while (parser.next(&v))
      if (decode_quote(v, &q)) ++quotes;
  }
  *quotes_out = quotes;
}

void BM_ParseQuotes(benchmark::State& state) {
  constexpr std::size_t kQuotes = 1 << 16;
  const auto stream = encoded_day(kQuotes);
  std::uint64_t quotes = 0;
  for (auto _ : state) {
    parse_stream(stream, 64 << 10, &quotes);
    benchmark::DoNotOptimize(quotes);
  }
  state.SetItemsProcessed(state.iterations() * kQuotes);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ParseQuotes);

void BM_ParseQuotesUnaligned(benchmark::State& state) {
  // 1499 is coprime with the 39-byte quote frame, so a frame straddles every
  // chunk boundary and the carry buffer copy path runs once per feed().
  constexpr std::size_t kQuotes = 1 << 16;
  const auto stream = encoded_day(kQuotes);
  std::uint64_t quotes = 0;
  for (auto _ : state) {
    parse_stream(stream, 1499, &quotes);
    benchmark::DoNotOptimize(quotes);
  }
  state.SetItemsProcessed(state.iterations() * kQuotes);
}
BENCHMARK(BM_ParseQuotesUnaligned);

void BM_EncodeQuotes(benchmark::State& state) {
  constexpr std::size_t kQuotes = 1 << 16;
  std::vector<md::Quote> day;
  day.reserve(kQuotes);
  for (std::size_t i = 0; i < kQuotes; ++i) day.push_back(make_quote(i));
  FrameWriter w;
  for (auto _ : state) {
    w.clear();  // keeps capacity: steady-state encode is allocation-free
    for (const auto& q : day) w.quote(q);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetItemsProcessed(state.iterations() * kQuotes);
}
BENCHMARK(BM_EncodeQuotes);

void BM_TcpFetchDay(benchmark::State& state) {
  // Whole-session cost on loopback: connect + hello + stream + end_of_day.
  // Dominated by syscalls, not parsing — compare against BM_ParseQuotes to
  // see the wire format itself is not the bottleneck.
  const std::size_t quotes = static_cast<std::size_t>(state.range(0));
  std::vector<md::Quote> day;
  day.reserve(quotes);
  for (std::size_t i = 0; i < quotes; ++i) day.push_back(make_quote(i));
  TcpFeedServer server(
      [&](const std::string&) -> Expected<std::vector<md::Quote>> {
        return day;
      });
  if (!server.start().has_value()) {
    state.SkipWithError("feed server failed to start");
    return;
  }
  for (auto _ : state) {
    auto got = fetch_day("127.0.0.1", server.port(), "bench");
    if (!got.has_value() || got.value().size() != quotes) {
      state.SkipWithError("fetch_day failed");
      break;
    }
    benchmark::DoNotOptimize(got.value().data());
  }
  server.stop();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(quotes));
}
BENCHMARK(BM_TcpFetchDay)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
