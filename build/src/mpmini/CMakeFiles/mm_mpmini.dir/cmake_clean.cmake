file(REMOVE_RECURSE
  "CMakeFiles/mm_mpmini.dir/comm.cpp.o"
  "CMakeFiles/mm_mpmini.dir/comm.cpp.o.d"
  "CMakeFiles/mm_mpmini.dir/environment.cpp.o"
  "CMakeFiles/mm_mpmini.dir/environment.cpp.o.d"
  "CMakeFiles/mm_mpmini.dir/mailbox.cpp.o"
  "CMakeFiles/mm_mpmini.dir/mailbox.cpp.o.d"
  "CMakeFiles/mm_mpmini.dir/request.cpp.o"
  "CMakeFiles/mm_mpmini.dir/request.cpp.o.d"
  "libmm_mpmini.a"
  "libmm_mpmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_mpmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
