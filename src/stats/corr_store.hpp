// Memoized correlation store: compute each (day, universe, estimator,
// ∆s, M) correlation stream once, serve every later backtest from memory.
//
// The unit of memoization is a whole day of packed CorrFrames — exactly the
// bytes the correlation stage emits, one buffer per snapshot interval. A
// consumer on the hit path replays those buffers verbatim, so its strategies
// see BIT-IDENTICAL input to a cold run (no re-estimation, no
// re-serialization, no float drift). This is what lets the backtest service
// (src/svc) run many tenants' parameter sweeps over a shared day for the
// price of one correlation pass: the sweep dimensions that matter
// (divergence, thresholds, ctype selection among the stored measures) all
// live DOWNSTREAM of the frame stream.
//
// Concurrency contract (the once-flag):
//   * acquire() under one key returns a hit Lease when the day is ready;
//   * the FIRST caller through a missing key becomes the owner and must
//     publish() (or abandon by destroying the Lease — a fault-aborted run
//     must not poison the cache with a truncated day);
//   * concurrent callers on a computing key BLOCK until the owner publishes
//     or abandons; on abandon, ownership hands off to one blocked waiter so
//     the day is still computed exactly once per failure-free attempt.
//
// Published days are immutable shared_ptr<const CorrDay>: eviction (LRU by
// last acquire, bounded by byte_budget) only drops the store's reference —
// replays in flight keep theirs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace mm::stats {

// Identity of one memoized correlation day. `universe` is any canonical
// fingerprint of the symbol set + data source (the service uses
// "synthetic/<n>/<seed>"); two keys with different fingerprints never share.
struct CorrKey {
  std::string universe;
  std::int32_t date = 0;  // yyyymmdd
  std::int64_t delta_s = 0;
  std::int64_t window = 0;
  std::string estimator;  // "pearson" or "pearson+maronna"

  // Canonical map key; also the human-readable identity in logs/metrics.
  std::string cache_key() const;
};

// One day of packed CorrFrames in emission order (frames[i] = interval i).
struct CorrDay {
  std::vector<std::vector<std::uint8_t>> frames;

  std::size_t bytes() const {
    std::size_t total = sizeof(CorrDay);
    for (const auto& f : frames) total += f.size() + sizeof(f);
    return total;
  }
};

class CorrStore {
 public:
  // Native counters (monotonic, read under the store mutex) so tests can
  // assert compute-once even when MM_OBS_ENABLED=OFF strips the registry.
  struct Stats {
    std::uint64_t hits = 0;       // acquire() served a ready day
    std::uint64_t misses = 0;     // acquire() made the caller the owner
    std::uint64_t waits = 0;      // acquire() blocked behind an owner
    std::uint64_t computes = 0;   // publish() calls (days actually computed)
    std::uint64_t abandons = 0;   // owner leases destroyed unpublished
    std::uint64_t evictions = 0;  // days dropped by the byte budget
  };

  // byte_budget 0 = unbounded. `registry` mirrors the native stats as
  // corr_store.* counters/gauges when observability is compiled in.
  explicit CorrStore(std::size_t byte_budget = 0,
                     obs::Registry* registry = nullptr);

  // Hit (data()), ownership (owner(), must publish/abandon), or post-wait
  // hit/ownership. Movable, not copyable; abandons on destruction if owning.
  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease();

    // Ready data; null while this lease owns the compute.
    const std::shared_ptr<const CorrDay>& data() const { return data_; }
    bool hit() const { return data_ != nullptr; }
    // True when this caller must compute the day and publish() it.
    bool owner() const { return owner_; }
    // Publish the computed day (owner only); unblocks every waiter.
    void publish(CorrDay day);

   private:
    friend class CorrStore;
    Lease(CorrStore* store, std::string key,
          std::shared_ptr<const CorrDay> data, bool owner)
        : store_(store), key_(std::move(key)), data_(std::move(data)),
          owner_(owner) {}

    CorrStore* store_ = nullptr;
    std::string key_;
    std::shared_ptr<const CorrDay> data_;
    bool owner_ = false;
  };

  Lease acquire(const CorrKey& key);

  // Non-blocking lookup; null when absent or still computing.
  std::shared_ptr<const CorrDay> peek(const CorrKey& key) const;

  Stats stats() const;
  std::size_t bytes() const;    // resident published bytes
  std::size_t entries() const;  // published days

  CorrStore(const CorrStore&) = delete;
  CorrStore& operator=(const CorrStore&) = delete;

 private:
  struct Entry {
    // null while an owner is computing; set at publish.
    std::shared_ptr<const CorrDay> data;
    bool computing = false;
    // Bumped on publish/abandon so waiters can tell progress from spurious
    // wakeups even across ownership handoffs.
    std::uint64_t generation = 0;
    std::list<std::string>::iterator lru;  // valid only when data != nullptr
  };

  void publish_day(const std::string& key, CorrDay day);
  void abandon(const std::string& key);
  void evict_locked();
  void touch_locked(Entry& entry, const std::string& key);

  const std::size_t byte_budget_;
  obs::Registry* const registry_;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently acquired
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace mm::stats
