// Tests for the Jacobi eigensolver and nearest-PSD correlation repair (the
// fix for the paper's "pairwise Maronna is not PSD" caveat, §IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "stats/psd.hpp"

namespace mm::stats {
namespace {

TEST(Jacobi, DiagonalMatrix) {
  SymMatrix m(3, 0.0);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const auto eig = jacobi_eigen(m);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-10);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  SymMatrix m(2, 0.0);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 1.0);
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Jacobi, ReconstructsMatrix) {
  mm::Rng rng(1);
  const std::size_t n = 8;
  SymMatrix m(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) m.set(i, j, rng.normal());

  const auto eig = jacobi_eigen(m);
  // Rebuild A = V diag(l) V^T and compare entrywise.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        sum += eig.vectors[i * n + k] * eig.values[k] * eig.vectors[j * n + k];
      EXPECT_NEAR(sum, m(i, j), 1e-8);
    }
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  mm::Rng rng(2);
  const std::size_t n = 6;
  SymMatrix m(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) m.set(i, j, rng.uniform(-1.0, 1.0));
  const auto eig = jacobi_eigen(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        dot += eig.vectors[i * n + a] * eig.vectors[i * n + b];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(IsPsd, IdentityAndValidCorrelation) {
  SymMatrix eye(4, 0.0);
  eye.fill_diagonal(1.0);
  EXPECT_TRUE(is_psd(eye));

  SymMatrix c(2, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.9);
  EXPECT_TRUE(is_psd(c));
}

TEST(IsPsd, DetectsIndefiniteTriple) {
  // r01 = r02 = 0.9, r12 = -0.9 cannot be a correlation matrix.
  SymMatrix c(3, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.9);
  c.set(0, 2, 0.9);
  c.set(1, 2, -0.9);
  EXPECT_FALSE(is_psd(c));
}

TEST(NearestPsd, RepairsIndefiniteTriple) {
  SymMatrix c(3, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.9);
  c.set(0, 2, 0.9);
  c.set(1, 2, -0.9);

  const auto repaired = nearest_psd_correlation(c);
  EXPECT_TRUE(is_psd(repaired, 1e-8));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(repaired(i, i), 1.0, 1e-12);
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_LE(repaired(i, j), 1.0);
      EXPECT_GE(repaired(i, j), -1.0);
    }
  }
  // Repair should preserve the overall sign structure.
  EXPECT_GT(repaired(0, 1), 0.3);
  EXPECT_GT(repaired(0, 2), 0.3);
  EXPECT_LT(repaired(1, 2), 0.0);
}

TEST(NearestPsd, AlreadyPsdAlmostUnchanged) {
  SymMatrix c(3, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.5);
  c.set(0, 2, 0.2);
  c.set(1, 2, 0.3);
  const auto repaired = nearest_psd_correlation(c);
  EXPECT_LT(SymMatrix::max_abs_diff(c, repaired), 1e-6);
}

TEST(NearestPsd, RandomPerturbedMatricesAllRepairable) {
  mm::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 10;
    // Start from a rank-1 (PSD) correlation and add noise until indefinite.
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    SymMatrix c(n, 0.0);
    c.fill_diagonal(1.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        c.set(i, j, std::clamp(b[i] * b[j] + rng.normal() * 0.3, -1.0, 1.0));

    const auto repaired = nearest_psd_correlation(c);
    EXPECT_TRUE(is_psd(repaired, 1e-7)) << "trial " << trial;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(repaired(i, i), 1.0, 1e-9);
  }
}

TEST(Higham, RepairsIndefiniteTripleToPsd) {
  SymMatrix c(3, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.9);
  c.set(0, 2, 0.9);
  c.set(1, 2, -0.9);
  const auto repaired = nearest_correlation_higham(c);
  EXPECT_TRUE(is_psd(repaired, 1e-7));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(repaired(i, i), 1.0, 1e-9);
}

TEST(Higham, AlreadyValidMatrixUnchanged) {
  SymMatrix c(4, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, 0.3);
  c.set(1, 2, -0.2);
  c.set(2, 3, 0.5);
  const auto repaired = nearest_correlation_higham(c);
  EXPECT_LT(SymMatrix::max_abs_diff(c, repaired), 1e-8);
}

TEST(Higham, AtLeastAsCloseAsClipping) {
  // Higham converges to the Frobenius-nearest correlation matrix; the
  // clipping heuristic is fast but not optimal. Compare Frobenius distances.
  mm::Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 6;
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    SymMatrix c(n, 0.0);
    c.fill_diagonal(1.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        c.set(i, j, std::clamp(b[i] * b[j] + rng.normal() * 0.5, -1.0, 1.0));
    if (is_psd(c)) continue;

    const auto clipped = nearest_psd_correlation(c);
    const auto higham = nearest_correlation_higham(c);
    ASSERT_TRUE(is_psd(higham, 1e-6));

    const auto frobenius = [&](const SymMatrix& a) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
          const double d = a(std::min(i, j), std::max(i, j)) -
                           c(std::min(i, j), std::max(i, j));
          sum += d * d;
        }
      return sum;
    };
    EXPECT_LE(frobenius(higham), frobenius(clipped) + 1e-9) << "trial " << trial;
  }
}

TEST(MinEigenvalue, MatchesJacobiFront) {
  SymMatrix c(2, 0.0);
  c.fill_diagonal(1.0);
  c.set(0, 1, -0.5);
  EXPECT_NEAR(min_eigenvalue(c), 0.5, 1e-10);
}

}  // namespace
}  // namespace mm::stats
