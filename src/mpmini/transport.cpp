#include "mpmini/transport.hpp"

namespace mm::mpi {

InProcessTransport::InProcessTransport(int world_size, TransportMode mode)
    : mode_(mode) {
  MM_ASSERT_MSG(world_size > 0, "World size must be positive");
  MM_ASSERT_MSG(mode_ != TransportMode::socket,
                "socket worlds are built by Environment::run_rendezvous");
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  if (mode_ == TransportMode::ring)
    for (auto& mailbox : mailboxes_) mailbox->init_lanes(world_size);
}

void InProcessTransport::transmit(int src_world, int dest_world, Message&& msg) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest_world)];
  // Hot path: a lane-ring push in ring mode (lock-free, no contention with
  // other senders), the locked mailbox path otherwise — and also when the
  // bounded ring is full, where deliver() drains this lane first so
  // per-(source, comm) order still holds.
  if (mode_ == TransportMode::ring) {
    Lane& lane = box.lane_for_sender(src_world);
    if (lane.ring.try_push(std::move(msg))) {
      lane.note_depth();
      box.notify_ring_push();
      return;
    }
  }
  box.deliver(std::move(msg));
}

Mailbox& InProcessTransport::mailbox(int world_rank) {
  MM_ASSERT(world_rank >= 0 &&
            world_rank < static_cast<int>(mailboxes_.size()));
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

void InProcessTransport::attach_obs(obs::Gauge* queue_peak, obs::Gauge* ring_peak) {
  for (auto& mailbox : mailboxes_) mailbox->set_obs(queue_peak, ring_peak);
}

}  // namespace mm::mpi
