// Portfolio accounting: positions, cash, mark-to-market equity.
//
// The backtester produces per-pair trade lists; Portfolio aggregates them
// into the book a trading desk actually holds — net position per symbol,
// cash, gross/net exposure and an interval-by-interval equity curve — which
// is what the paper's master process would report upward ("risk management
// and liquidity provisioning", Fig. 1).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "core/strategy.hpp"
#include "stats/sym_matrix.hpp"

namespace mm::core {

class Portfolio {
 public:
  explicit Portfolio(double initial_cash);

  // Execute a fill: buy (shares > 0) consumes cash, sell frees it. Also
  // marks the symbol at the fill price.
  void apply_fill(std::uint32_t symbol, double shares, double price);

  // Update a symbol's mark without trading.
  void mark(std::uint32_t symbol, double price);

  double cash() const { return cash_; }
  double position(std::uint32_t symbol) const;
  double last_price(std::uint32_t symbol) const;

  // cash + sum of position x last mark.
  double equity() const;
  // sum over symbols of |position| x last mark.
  double gross_exposure() const;
  // sum over symbols of position x last mark (signed).
  double net_exposure() const;

  bool flat() const;

 private:
  double cash_;
  std::map<std::uint32_t, double> positions_;
  std::map<std::uint32_t, double> marks_;
};

// One point of an equity curve.
struct EquityPoint {
  std::int64_t interval = 0;
  double equity = 0.0;
  double gross_exposure = 0.0;
};

// A trade tagged with the pair it belongs to (the backtester returns trades
// per pair; aggregation needs the symbols back).
struct TaggedTrade {
  stats::PairIndex pair{};
  Trade trade;
};

// Replay a day: apply every trade's entry and exit fills in interval order
// against `initial_cash`, marking all symbols to the BAM grid each interval.
// Returns the per-interval equity curve (one point per interval of the day).
std::vector<EquityPoint> simulate_portfolio(
    const std::vector<TaggedTrade>& trades,
    const std::vector<std::vector<double>>& bam, double initial_cash);

// Render an equity curve as an ASCII chart (rows x width) with axis labels.
std::string render_equity_curve(const std::vector<EquityPoint>& curve,
                                std::size_t width = 70, std::size_t rows = 16);

}  // namespace mm::core
