// Rolling-window primitives used by the strategy and the correlation engine.
//
// RollingWindow   — fixed-capacity ring buffer with O(1) push and random
//                   access from oldest to newest.
// RollingMean     — windowed mean with running sum (used for C̄ over W).
// RollingMinMax   — windowed min/max via monotonic deques (used for the
//                   spread high/low over the retracement window).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/error.hpp"

namespace mm::stats {

template <typename T>
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity) : buffer_(capacity) {
    MM_ASSERT_MSG(capacity > 0, "RollingWindow capacity must be positive");
  }

  void push(const T& value) {
    buffer_[head_] = value;
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
  }

  bool full() const { return size_ == buffer_.size(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }

  // Element i counted from the oldest (i = 0) to the newest (i = size()-1).
  const T& operator[](std::size_t i) const {
    MM_ASSERT(i < size_);
    const std::size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    return buffer_[(start + i) % buffer_.size()];
  }

  const T& newest() const {
    MM_ASSERT(size_ > 0);
    return (*this)[size_ - 1];
  }
  const T& oldest() const {
    MM_ASSERT(size_ > 0);
    return (*this)[0];
  }

  // Copy out oldest -> newest (for handing a window to a batch estimator).
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

class RollingMean {
 public:
  explicit RollingMean(std::size_t window) : window_(window) {
    MM_ASSERT(window > 0);
  }

  void update(double value) {
    if (window_.full()) sum_ -= window_.oldest();
    window_.push(value);
    sum_ += value;
    // Rebuild the running sum periodically to cap floating-point drift.
    if (++pushes_ % 4096 == 0) {
      sum_ = 0.0;
      for (std::size_t i = 0; i < window_.size(); ++i) sum_ += window_[i];
    }
  }

  bool full() const { return window_.full(); }
  std::size_t size() const { return window_.size(); }

  double mean() const {
    MM_ASSERT(window_.size() > 0);
    return sum_ / static_cast<double>(window_.size());
  }

 private:
  RollingWindow<double> window_;
  double sum_ = 0.0;
  std::size_t pushes_ = 0;
};

class RollingMinMax {
 public:
  explicit RollingMinMax(std::size_t window) : window_(window) {
    MM_ASSERT(window > 0);
  }

  void update(double value) {
    ++index_;
    const std::size_t expire_before = index_ > window_ ? index_ - window_ : 0;

    while (!min_.empty() && min_.front().index < expire_before) min_.pop_front();
    while (!max_.empty() && max_.front().index < expire_before) max_.pop_front();
    while (!min_.empty() && min_.back().value >= value) min_.pop_back();
    while (!max_.empty() && max_.back().value <= value) max_.pop_back();
    min_.push_back({index_ - 1, value});
    max_.push_back({index_ - 1, value});
    if (count_ < window_) ++count_;
  }

  bool ready() const { return count_ > 0; }
  bool full() const { return count_ == window_; }

  double min() const {
    MM_ASSERT(!min_.empty());
    return min_.front().value;
  }
  double max() const {
    MM_ASSERT(!max_.empty());
    return max_.front().value;
  }

 private:
  struct Entry {
    std::size_t index;
    double value;
  };

  std::size_t window_;
  std::size_t index_ = 0;
  std::size_t count_ = 0;
  std::deque<Entry> min_;
  std::deque<Entry> max_;
};

}  // namespace mm::stats
