// Figure 1 reproduction: build the MarketMiner component graph (collector ->
// cleaner -> OHLC/TA snapshot -> parallel correlation engine -> strategy
// workers -> master), stream a synthetic trading day through it, and report
// per-stage throughput and the master's aggregated books.
#include <cstdio>

#include "common/cli.hpp"
#include "engine/pipeline.hpp"
#include "marketdata/generator.hpp"

int main(int argc, char** argv) {
  mm::Cli cli("repro_figure1",
              "Reproduce Figure 1: the integrated MarketMiner pipeline");
  auto& symbols = cli.add_int("symbols", 10, "universe size");
  auto& workers = cli.add_int("workers", 3, "parallel strategy nodes (1..42)");
  auto& corr_ranks = cli.add_int("corr-ranks", 4,
                                 "ranks backing the parallel correlation engine");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& quote_rate = cli.add_double("quote-rate", 0.5, "quotes/symbol/second");
  cli.parse(argc, argv);

  const auto universe = mm::md::make_universe(static_cast<std::size_t>(symbols));
  mm::md::GeneratorConfig gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  gen.quote_rate = quote_rate;
  const mm::md::SyntheticDay day(universe, gen, 0);

  // One strategy node per parameter set sharing (ds, M), as in Fig. 1: here
  // the three correlation treatments of the base level, then extra levels.
  mm::engine::PipelineConfig cfg;
  cfg.symbols = static_cast<std::size_t>(symbols);
  cfg.correlation_replicas = static_cast<int>(corr_ranks);
  cfg.cluster_every = 100;  // the [12] clustering branch, every 100 intervals
  cfg.cluster_count = 3;
  const mm::core::ParamGrid grid;
  const auto all = grid.all();
  for (const auto& params : all) {
    if (params.corr_window != mm::core::ParamGrid::base().corr_window) continue;
    cfg.strategies.push_back(params);
    if (static_cast<std::int64_t>(cfg.strategies.size()) >= workers) break;
  }

  std::printf("Figure 1 — MarketMiner pipeline on one synthetic trading day\n\n");
  std::printf("graph: collector -> cleaner -> snapshot -> correlation engine "
              "(%d ranks) -> %zu strategy workers -> master\n",
              cfg.correlation_replicas, cfg.strategies.size());
  std::printf("data: %zu symbols, %zu quotes (%zu corrupted at source)\n\n",
              cfg.symbols, day.quotes().size(), day.corrupted_count());

  const auto result = mm::engine::run_pipeline(cfg, universe, day.quotes());

  std::printf("%-14s %12s %12s %12s %12s\n", "stage", "records_in", "records_out",
              "items_in", "items_out");
  for (const auto& stage : result.stages) {
    std::printf("%-14s %12llu %12llu %12llu %12llu\n", stage.name.c_str(),
                static_cast<unsigned long long>(stage.records_in),
                static_cast<unsigned long long>(stage.records_out),
                static_cast<unsigned long long>(stage.items_in),
                static_cast<unsigned long long>(stage.items_out));
  }

  std::printf("\nmaster: %llu orders (%llu entries, %llu exits) in %llu interval "
              "baskets; %llu round trips, total pnl $%.2f\n",
              static_cast<unsigned long long>(result.master.orders),
              static_cast<unsigned long long>(result.master.entries),
              static_cast<unsigned long long>(result.master.exits),
              static_cast<unsigned long long>(result.master.basket_count),
              static_cast<unsigned long long>(result.master.trades),
              result.master.total_pnl);
  double residual = 0.0;
  for (const auto& [sym, net] : result.master.net_shares)
    residual += net > 0 ? net : -net;
  std::printf("end-of-day net exposure across all symbols: %.6f shares "
              "(every position flattened)\n",
              residual);
  std::printf("\nclustering branch: %zu snapshots (every 100 intervals, "
              "single-linkage to 3 groups)\n",
              result.clusters.size());
  if (!result.clusters.empty()) {
    const auto& last = result.clusters.back();
    std::printf("  final grouping at interval %lld:",
                static_cast<long long>(last.interval));
    for (int c = 0; c < last.cluster_count; ++c) {
      std::printf(" {");
      bool first = true;
      for (std::size_t i = 0; i < last.assignment.size(); ++i) {
        if (last.assignment[i] != c) continue;
        std::printf("%s%s", first ? "" : " ",
                    universe.table.name(static_cast<mm::md::SymbolId>(i)).c_str());
        first = false;
      }
      std::printf("}");
    }
    std::printf("\n");
  }

  std::printf("\nthroughput: %.0f quotes/s end-to-end (%.2f s wall for the "
              "6.5-hour session — %.0fx faster than real time)\n",
              result.quotes_per_second, result.wall_seconds,
              23400.0 / (result.wall_seconds > 0 ? result.wall_seconds : 1e-9));
  return 0;
}
