#include "obs/snapshots.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"  // now_ns

namespace mm::obs {

#if MM_OBS_ENABLED

SnapshotRing::SnapshotRing(std::size_t capacity) : capacity_(capacity) {
  MM_ASSERT_MSG(capacity > 0, "snapshot ring needs a positive capacity");
  frames_.resize(capacity_);
}

void SnapshotRing::push(SnapshotFrame frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_[next_] = std::move(frame);
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::size_t SnapshotRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::vector<SnapshotFrame> SnapshotRing::last(std::size_t k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = (k == 0 || k > count_) ? count_ : k;
  std::vector<SnapshotFrame> out;
  out.reserve(take);
  // Oldest of the `take` newest sits take steps behind the write cursor.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t idx = (next_ + capacity_ - take + i) % capacity_;
    out.push_back(frames_[idx]);
  }
  return out;
}

SnapshotScheduler::SnapshotScheduler(const Registry& registry, Config config)
    : registry_(registry), config_(config), ring_(config.ring_capacity) {
  MM_ASSERT_MSG(config_.period.count() > 0, "snapshot period must be positive");
}

SnapshotScheduler::~SnapshotScheduler() { stop(); }

void SnapshotScheduler::start() {
  if (thread_.joinable()) return;
  stopping_ = false;
  tick();  // frame zero: the baseline every later delta subtracts from
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      if (stop_cv_.wait_for(lock, config_.period, [this] { return stopping_; }))
        break;
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void SnapshotScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SnapshotScheduler::tick() {
  SnapshotFrame frame;
  frame.t_ns = now_ns();
  frame.snap = registry_.snapshot();
  ring_.push(std::move(frame));
}

RateSample SnapshotScheduler::rates() const {
  const auto newest = ring_.last(2);
  RateSample out;
  if (newest.size() < 2) return out;
  const SnapshotFrame& a = newest[0];
  const SnapshotFrame& b = newest[1];
  out.t_ns = b.t_ns;
  out.dt_ns = b.t_ns - a.t_ns;
  if (out.dt_ns <= 0) return out;
  const double dt_s = static_cast<double>(out.dt_ns) / 1e9;
  const Snapshot delta = b.snap.delta(a.snap);
  out.msgs_per_s =
      static_cast<double>(delta.counter_total("mpmini.recv.messages")) / dt_s;
  out.bytes_per_s =
      static_cast<double>(delta.counter_total("mpmini.recv.bytes")) / dt_s;
  out.frames_per_s =
      static_cast<double>(delta.counter_suffix_total(".frames_in")) / dt_s;
  if (const MetricValue* step = delta.find(config_.step_histogram);
      step != nullptr && step->kind == MetricKind::histogram && step->count > 0) {
    out.p50_step_ns = step->quantile(0.50);
    out.p95_step_ns = step->quantile(0.95);
    out.p99_step_ns = step->quantile(0.99);
  }
  return out;
}

#endif  // MM_OBS_ENABLED

}  // namespace mm::obs
