#include "stats/psd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mm::stats {

EigenResult jacobi_eigen(const SymMatrix& m, int max_sweeps, double tol) {
  const std::size_t n = m.size();
  MM_ASSERT_MSG(n >= 1, "jacobi_eigen on empty matrix");

  // Dense working copy A and accumulated rotations V (V starts as identity).
  std::vector<double> a(n * n), v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    v[i * n + i] = 1.0;
    for (std::size_t j = 0; j < n; ++j) a[i * n + j] = m(std::min(i, j), std::max(i, j));
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract eigenvalues and sort ascending, permuting eigenvector columns.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x * n + x] < a[y * n + y]; });

  EigenResult out;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a[order[k] * n + order[k]];
    for (std::size_t i = 0; i < n; ++i) out.vectors[i * n + k] = v[i * n + order[k]];
  }
  return out;
}

double min_eigenvalue(const SymMatrix& m) { return jacobi_eigen(m).values.front(); }

bool is_psd(const SymMatrix& m, double tolerance) {
  // Attempted Cholesky factorization of m + tol·I, which succeeds iff the
  // shifted matrix is positive definite — i.e. min eigenvalue of m >= -tol
  // (up to rounding). One O(n³/6) pass instead of a multi-sweep Jacobi
  // eigensolve; this check runs on every engine step, the repair only on
  // actual indefiniteness.
  const std::size_t n = m.size();
  std::vector<double> l(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double d = m(j, j) + tolerance;
    for (std::size_t k = 0; k < j; ++k) d -= l[j * n + k] * l[j * n + k];
    if (!(d > 0.0)) return false;  // non-positive pivot or NaN
    const double root = std::sqrt(d);
    l[j * n + j] = root;
    const double inv = 1.0 / root;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = m(j, i);
      for (std::size_t k = 0; k < j; ++k) s -= l[i * n + k] * l[j * n + k];
      l[i * n + j] = s * inv;
    }
  }
  return true;
}

SymMatrix nearest_correlation_higham(const SymMatrix& m, int max_iterations,
                                     double tolerance) {
  const std::size_t n = m.size();
  // Work on dense symmetric storage Y; Dykstra correction dS.
  std::vector<double> y(n * n), ds(n * n, 0.0), r(n * n), x(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) y[i * n + j] = m(std::min(i, j), std::max(i, j));

  for (int iter = 0; iter < max_iterations; ++iter) {
    // R = Y - dS; X = P_S(R): project onto the PSD cone.
    for (std::size_t k = 0; k < n * n; ++k) r[k] = y[k] - ds[k];
    SymMatrix rm(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) rm.set(i, j, r[i * n + j]);
    const EigenResult eig = jacobi_eigen(rm);
    std::fill(x.begin(), x.end(), 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const double lambda = std::max(eig.values[k], 0.0);
      if (lambda == 0.0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        const double vik = eig.vectors[i * n + k] * lambda;
        for (std::size_t j = 0; j < n; ++j) x[i * n + j] += vik * eig.vectors[j * n + k];
      }
    }
    // dS = X - R; Y = P_U(X): set the unit diagonal.
    for (std::size_t k = 0; k < n * n; ++k) ds[k] = x[k] - r[k];
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double target = i == j ? 1.0 : x[i * n + j];
        delta = std::max(delta, std::abs(target - y[i * n + j]));
        y[i * n + j] = target;
      }
    }
    if (delta < tolerance) break;
  }

  SymMatrix out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    out.set(i, i, 1.0);
    for (std::size_t j = i + 1; j < n; ++j)
      out.set(i, j, std::clamp(0.5 * (y[i * n + j] + y[j * n + i]), -1.0, 1.0));
  }
  return out;
}

SymMatrix nearest_psd_correlation(const SymMatrix& m, double floor) {
  const std::size_t n = m.size();
  const EigenResult eig = jacobi_eigen(m);

  // Reconstruct B = V diag(max(lambda, floor)) V^T.
  std::vector<double> b(n * n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = std::max(eig.values[k], floor);
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = eig.vectors[i * n + k] * lambda;
      for (std::size_t j = i; j < n; ++j) b[i * n + j] += vik * eig.vectors[j * n + k];
    }
  }

  // Rescale to unit diagonal and clamp.
  SymMatrix out(n, 0.0);
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    MM_ASSERT_MSG(b[i * n + i] > 0.0, "nearest_psd: non-positive diagonal");
    d[i] = 1.0 / std::sqrt(b[i * n + i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.set(i, i, 1.0);
    for (std::size_t j = i + 1; j < n; ++j)
      out.set(i, j, std::clamp(b[i * n + j] * d[i] * d[j], -1.0, 1.0));
  }
  return out;
}

}  // namespace mm::stats
