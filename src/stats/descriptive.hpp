// Descriptive statistics used throughout the evaluation (Tables III–V).
//
// Conventions match the paper's reporting: sample standard deviation
// (n-1 denominator), moment-based skewness and (raw, non-excess) kurtosis —
// the paper's normal-reference kurtosis is 3 — and Sharpe ratio defined as
// mean / stddev of the return sample (§V).
#pragma once

#include <vector>

#include "common/error.hpp"

namespace mm::stats {

double mean(const std::vector<double>& xs);
// Sample variance (n-1). Requires n >= 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

// Median via partial sort; does not modify the input.
double median(std::vector<double> xs);

// Quantile q in [0,1] with linear interpolation between order statistics
// (type-7, the R/NumPy default). Does not modify the input.
double quantile(std::vector<double> xs, double q);

// Moment skewness g1 = m3 / m2^{3/2}. Requires n >= 2 and non-zero variance.
double skewness(const std::vector<double>& xs);

// Raw kurtosis m4 / m2^2 (normal = 3).
double kurtosis(const std::vector<double>& xs);

// Sharpe ratio as defined in §V: mean / sqrt(variance).
double sharpe_ratio(const std::vector<double>& xs);

// All of the above in one pass over a sample (the row set of Tables III–V).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double sharpe = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

}  // namespace mm::stats
