// Per-node execution context: the API a dagflow component programs against.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mpmini/comm.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mm::dag {

struct Edge;

// A message received on one of the node's input ports.
struct InMessage {
  int port = 0;
  std::vector<std::uint8_t> bytes;
  // Causal context the frame arrived with (invalid when untraced). recv()
  // installs it as the consuming thread's current context, so node code —
  // and every send it makes — inherits the causality of the frame that woke
  // it. Field-free when MM_OBS_ENABLED=OFF.
  obs::TraceContext trace{};
};

class Context {
 public:
  // Built by Graph::run; user code only consumes it. `leader_ranks` maps a
  // node id to the world rank that owns its edges (identity when every node
  // is single-rank; group nodes put their leader there). `pump_timeout`
  // bounds every wait on the transport: zero means wait forever; a positive
  // value turns a silent transport into a fault (timed-out inputs are
  // treated as failed, a timed-out output is abandoned) instead of a hang.
  // `metrics` and `ring` are optional telemetry hooks (see RunOptions): with
  // a registry the context maintains dag.<name>.frames_in / frames_out /
  // credit_stall_ns; with a ring it records emit-stall spans and timeout
  // instants.
  Context(mpi::Comm& comm, int node, std::string name, const std::vector<Edge>& edges,
          const std::vector<int>& leader_ranks,
          std::chrono::milliseconds pump_timeout = std::chrono::milliseconds{0},
          obs::Registry* metrics = nullptr, obs::TraceRing* ring = nullptr);

  const std::string& name() const { return name_; }
  int node() const { return node_; }
  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }

  // Next message from any input port, in arrival order. Returns nullopt once
  // every input has reached end-of-stream — normally, via a failure marker,
  // or via a pump timeout. A flow-control credit returns to the sender as
  // soon as the frame is buffered here (see pump), at roughly this node's
  // consumption rate.
  std::optional<InMessage> recv();

  // Send on an output port. Blocks while the edge is at capacity (credit
  // exhausted), servicing incoming data/credits meanwhile. With a pump
  // timeout configured, an edge whose consumer returns no credit within the
  // deadline is marked dead and the message (and all later ones) dropped.
  void emit(int port, std::vector<std::uint8_t> bytes);

  // Close one output port early (EOS). Idempotent. All still-open outputs
  // are closed automatically when the node function returns.
  void close_output(int port);
  void close_all_outputs();

  // Close every open output with a NodeFailure marker instead of EOS: the
  // downstream node sees the port closed AND the lineage poisoned. Called by
  // the run harness when the node function throws; close_all_outputs also
  // degrades to this when the node consumed a poisoned input, so failure
  // markers propagate transitively to the sinks.
  void fail_all_outputs();

  // True once any input carried a failure marker or timed out.
  bool upstream_failed() const { return upstream_failed_; }
  // Input ports that closed via failure marker or timeout, ascending.
  std::vector<int> failed_input_ports() const;
  // True if any pump deadline expired (inputs silenced or an output wedged).
  bool timed_out() const { return timed_out_; }

  // Totals for throughput reporting.
  std::uint64_t messages_in() const { return messages_in_; }
  std::uint64_t messages_out() const { return messages_out_; }

  // Telemetry hooks for component code (either may be null).
  obs::Registry* metrics() const { return metrics_; }
  obs::TraceRing* ring() const { return ring_; }

 private:
  struct InputEdge {
    int edge_id;
    int peer_node;  // rank of the producer
    int port;
    bool open = true;
    bool failed = false;  // closed by failure marker or timeout
  };
  struct OutputEdge {
    int edge_id;
    int peer_node;  // rank of the consumer
    int port;
    int credits;
    bool open = true;
  };

  // Block for one incoming transport message and dispatch it (data -> queue,
  // EOS/failure -> mark closed, credit -> top up). Returns false if
  // `deadline` passed with nothing processed (only possible when a pump
  // timeout is configured).
  bool pump(std::chrono::steady_clock::time_point deadline);
  bool all_inputs_closed() const;
  void close_outputs_with(std::uint8_t kind);

  static int data_tag(int edge_id) { return 2 * edge_id; }
  static int credit_tag(int edge_id) { return 2 * edge_id + 1; }

  mpi::Comm& comm_;
  int node_;
  std::string name_;
  std::chrono::milliseconds pump_timeout_{0};
  obs::Registry* metrics_ = nullptr;
  obs::TraceRing* ring_ = nullptr;
  obs::Counter* frames_in_ = nullptr;        // dag.<name>.frames_in
  obs::Counter* frames_out_ = nullptr;       // dag.<name>.frames_out
  obs::Counter* credit_stall_ns_ = nullptr;  // dag.<name>.credit_stall_ns
  std::vector<InputEdge> inputs_;
  std::vector<OutputEdge> outputs_;
  std::deque<InMessage> ready_;  // data already pumped but not yet recv()ed
  bool upstream_failed_ = false;
  bool timed_out_ = false;
  std::uint64_t messages_in_ = 0;
  std::uint64_t messages_out_ = 0;
};

}  // namespace mm::dag
