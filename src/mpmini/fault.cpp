#include "mpmini/fault.hpp"

#include "common/rng.hpp"

namespace mm::mpi {
namespace {

// Collapse an envelope into one 64-bit stream position, then expand through
// splitmix64 so structurally similar envelopes decorrelate.
std::uint64_t envelope_hash(std::uint64_t seed, const Message& msg,
                            int dest_world_rank, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  state ^= splitmix64(state) ^ msg.comm_id;
  state ^= splitmix64(state) ^ (static_cast<std::uint64_t>(msg.source) << 32 |
                                static_cast<std::uint32_t>(dest_world_rank));
  state ^= splitmix64(state) ^ msg.sequence;
  state ^= splitmix64(state) ^ static_cast<std::uint64_t>(msg.tag);
  return splitmix64(state);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultDecision FaultPlan::decide(const Message& msg, int dest_world_rank) const {
  FaultDecision decision;
  // Collective control traffic is reliable by contract (see header).
  if (msg.tag >= reserved_tag_base) return decision;

  const double u = to_unit(envelope_hash(seed, msg, dest_world_rank, 1));
  if (u < drop_prob) {
    decision.drop = true;
    return decision;
  }
  if (u < drop_prob + duplicate_prob) decision.duplicate = true;
  if (delay_prob > 0.0 &&
      to_unit(envelope_hash(seed, msg, dest_world_rank, 2)) < delay_prob)
    decision.delay = delay;
  return decision;
}

}  // namespace mm::mpi
