#include "mpmini/mailbox.hpp"

#include "common/error.hpp"
#include "mpmini/wait.hpp"
#include "obs/heartbeat.hpp"

namespace mm::mpi {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();
}  // namespace

Mailbox::Mailbox() = default;

Mailbox::~Mailbox() {
  for (int s = 0; s < lane_count_; ++s)
    delete lanes_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
  // Queued envelopes and pending tickets hold no owned resources beyond the
  // pool blocks / shared_ptrs, which release themselves.
  for (RecvTicket* t = pending_head_; t != nullptr;) {
    RecvTicket* next = t->next;
    t->self.reset();
    t = next;
  }
}

void Mailbox::init_lanes(int world_size) {
  MM_ASSERT(world_size > 0 && lane_count_ == 0);
  lanes_ = std::make_unique<std::atomic<Lane*>[]>(static_cast<std::size_t>(world_size));
  for (int s = 0; s < world_size; ++s)
    lanes_[static_cast<std::size_t>(s)].store(nullptr, std::memory_order_relaxed);
  lane_count_ = world_size;
}

Lane& Mailbox::lane_for_sender(int source_world_rank) {
  MM_ASSERT(source_world_rank >= 0 && source_world_rank < lane_count_);
  auto& slot = lanes_[static_cast<std::size_t>(source_world_rank)];
  // The slot is written only by `source_world_rank`'s single sending thread
  // (the ring-mode precondition, see the Comm docs), so a plain
  // check-then-create needs no CAS; the release store publishes the lane to
  // the draining side.
  Lane* lane = slot.load(std::memory_order_relaxed);
  if (lane == nullptr) {
    lane = new Lane(static_cast<std::size_t>(ring_capacity()), ring_peak_);
#ifndef NDEBUG
    lane->producer = std::this_thread::get_id();
#endif
    slot.store(lane, std::memory_order_release);
  }
#ifndef NDEBUG
  // A second sending thread on the same world rank would corrupt the SPSC
  // ring silently; fail loudly in debug builds instead.
  MM_ASSERT_MSG(lane->producer == std::this_thread::get_id(),
                "ring transport: a world rank must send from a single thread "
                "(use MM_MPMINI_TRANSPORT=locked for multi-threaded senders)");
#endif
  return *lane;
}

void Mailbox::set_obs(obs::Gauge* queue_peak, obs::Gauge* ring_depth_peak) {
  queue_peak_ = queue_peak;
  ring_peak_ = ring_depth_peak;
  // Contract: called before traffic starts, so touching lanes is safe.
  for (int s = 0; s < lane_count_; ++s) {
    Lane* lane = lanes_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
    if (lane != nullptr) lane->depth_peak = ring_depth_peak;
  }
}

// --- intrusive list plumbing (mutex_ held) ---------------------------------

void Mailbox::pending_push_locked(RecvTicket* t) {
  t->prev = pending_tail_;
  t->next = nullptr;
  if (pending_tail_ != nullptr)
    pending_tail_->next = t;
  else
    pending_head_ = t;
  pending_tail_ = t;
}

void Mailbox::pending_unlink_locked(RecvTicket* t) {
  if (t->prev != nullptr)
    t->prev->next = t->next;
  else
    pending_head_ = t->next;
  if (t->next != nullptr)
    t->next->prev = t->prev;
  else
    pending_tail_ = t->prev;
  t->prev = nullptr;
  t->next = nullptr;
}

void Mailbox::queue_push_locked(Envelope* e) {
  e->prev = queue_tail_;
  e->next = nullptr;
  if (queue_tail_ != nullptr)
    queue_tail_->next = e;
  else
    queue_head_ = e;
  queue_tail_ = e;
  ++queue_size_;
  if (queue_peak_ != nullptr)
    queue_peak_->max_of(static_cast<std::int64_t>(queue_size_));
}

void Mailbox::queue_unlink_locked(Envelope* e) {
  if (e->prev != nullptr)
    e->prev->next = e->next;
  else
    queue_head_ = e->next;
  if (e->next != nullptr)
    e->next->prev = e->prev;
  else
    queue_tail_ = e->prev;
  e->prev = nullptr;
  e->next = nullptr;
  --queue_size_;
}

// --- matching core (mutex_ held) -------------------------------------------

void Mailbox::complete_locked(RecvTicket* t, Message&& msg) {
  pending_unlink_locked(t);
  // Take the self-reference BEFORE flipping done: block_on's spin phase
  // reads `done` without the mutex, so the moment the store below lands a
  // stack ticket's frame may be gone — the release store must be the last
  // touch of *t. For an abandoned irecv ticket `keep` is the final owner
  // and destroys it at scope exit, after the store.
  auto keep = std::move(t->self);
  t->message = std::move(msg);
  t->done.store(true, std::memory_order_release);
}

void Mailbox::absorb_locked(Message&& msg) {
  // Earliest-posted matching receive wins.
  for (RecvTicket* t = pending_head_; t != nullptr; t = t->next) {
    if (matches(*t, msg)) {
      complete_locked(t, std::move(msg));
      return;
    }
  }
  Envelope* e = pool_.acquire();
  e->msg = std::move(msg);
  queue_push_locked(e);
}

bool Mailbox::drain_locked() {
  bool any = false;
  for (int s = 0; s < lane_count_; ++s) {
    Lane* lane = lanes_[static_cast<std::size_t>(s)].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    Message msg;
    while (lane->ring.try_pop(msg)) {
      absorb_locked(std::move(msg));
      any = true;
    }
  }
  return any;
}

Envelope* Mailbox::find_match_locked(const RecvTicket& ticket) {
  const auto me = std::this_thread::get_id();
  // Earliest-arrived matching message wins (skipping messages another
  // thread's probe reserved; taking a message releases its reservation).
  for (Envelope* e = queue_head_; e != nullptr; e = e->next) {
    if (visible_to(*e, me) && matches(ticket, e->msg)) return e;
  }
  return nullptr;
}

Message Mailbox::take_locked(Envelope* e) {
  Message msg = std::move(e->msg);
  queue_unlink_locked(e);
  pool_.release(e);
  return msg;
}

bool Mailbox::lanes_nonempty() const noexcept {
  for (int s = 0; s < lane_count_; ++s) {
    const Lane* lane =
        lanes_[static_cast<std::size_t>(s)].load(std::memory_order_acquire);
    if (lane != nullptr && !lane->ring.empty()) return true;
  }
  return false;
}

// --- delivery ---------------------------------------------------------------

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Drain first: if this is the ring-overflow fallback, the sender's own
    // lane backlog must be absorbed ahead of this message to preserve
    // per-(source, comm) FIFO order.
    drain_locked();
    absorb_locked(std::move(msg));
  }
  cv_.notify_all();  // wake waiters and probers (locked path is always loud)
}

void Mailbox::notify_ring_push() noexcept {
  // Eventcount publish side: the ring push (release store) happened before
  // this fence; a waiter that raised `parked_` before our load will re-drain
  // before sleeping, and one that parked already is woken here. The hot case
  // (nobody parked) costs the fence and one load.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_relaxed) > 0) {
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }
}

// --- blocking core ----------------------------------------------------------

// Wait until `t` completes or `deadline` passes (kNoDeadline = never).
// Bounded spin over the ticket flag and the lane rings first; then the
// eventcount park on cv_, chunked by the heartbeat interval when armed.
bool Mailbox::block_on(RecvTicket& t, Clock::time_point deadline) {
  obs::Pulse& pulse = obs::pulse_this_thread();
  const SpinPolicy& sp = spin_policy();
  if (lane_count_ > 0 && sp.enabled()) {
    for (std::uint32_t i = 0; i < sp.iterations; ++i) {
      if (t.done.load(std::memory_order_acquire)) return true;
      if (lanes_nonempty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
          cv_.notify_all();
      } else {
        spin_relax(sp, i);
      }
      if ((i & 63u) == 0) {
        pulse.beat();  // a long spin must not look like silence
        if (deadline != kNoDeadline && Clock::now() >= deadline) break;
      }
    }
    if (t.done.load(std::memory_order_acquire)) return true;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
      cv_.notify_all();
    if (t.done.load(std::memory_order_relaxed)) return true;
    const auto now = Clock::now();
    if (now >= deadline) {
      // The drain above was the post-deadline scan: a completion racing the
      // deadline has already been honored.
      return false;
    }
    parked_.fetch_add(1, std::memory_order_seq_cst);
    // Close the publish/park race: a ring push that missed our parked flag
    // is picked up by this re-drain before we sleep.
    if (drain_locked() && parked_.load(std::memory_order_relaxed) > 1)
      cv_.notify_all();
    if (t.done.load(std::memory_order_relaxed)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    auto target = deadline;
    if (pulse.armed()) {
      // Chunk the sleep into heartbeat intervals: an idle-but-alive rank
      // blocked here keeps beating and is never suspected.
      const auto chunk = now + pulse.interval();
      if (chunk < target) target = chunk;
    }
    if (target == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, target);
    parked_.fetch_sub(1, std::memory_order_relaxed);
    pulse.beat();
  }
}

// --- posted receives --------------------------------------------------------

std::shared_ptr<RecvTicket> Mailbox::post_recv(std::uint64_t comm_id, int source,
                                               int tag) {
  auto ticket = std::make_shared<RecvTicket>();
  ticket->comm_id = comm_id;
  ticket->source = source;
  ticket->tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
    cv_.notify_all();
  if (Envelope* e = find_match_locked(*ticket); e != nullptr) {
    ticket->message = take_locked(e);
    ticket->done.store(true, std::memory_order_release);
    return ticket;
  }
  pending_push_locked(ticket.get());
  ticket->self = ticket;  // the mailbox owns it too while it is posted
  return ticket;
}

Message Mailbox::wait(const std::shared_ptr<RecvTicket>& ticket) {
  block_on(*ticket, kNoDeadline);
  return std::move(ticket->message);
}

bool Mailbox::wait_for(const std::shared_ptr<RecvTicket>& ticket,
                       std::chrono::nanoseconds timeout) {
  if (ticket->done.load(std::memory_order_acquire)) return true;
  const auto deadline = (timeout == std::chrono::nanoseconds::max())
                            ? kNoDeadline
                            : Clock::now() + timeout;
  return block_on(*ticket, deadline);
}

std::optional<Message> Mailbox::cancel(const std::shared_ptr<RecvTicket>& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket->done.load(std::memory_order_relaxed)) return std::move(ticket->message);
  pending_unlink_locked(ticket.get());
  ticket->self.reset();
  return std::nullopt;
}

bool Mailbox::test(const std::shared_ptr<RecvTicket>& ticket) {
  if (ticket->done.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
    cv_.notify_all();
  return ticket->done.load(std::memory_order_relaxed);
}

// --- fast-path receives -----------------------------------------------------

Message Mailbox::receive(std::uint64_t comm_id, int source, int tag) {
  RecvTicket t;  // stack ticket: zero allocation on the hot path
  t.comm_id = comm_id;
  t.source = source;
  t.tag = tag;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
      cv_.notify_all();
    if (Envelope* e = find_match_locked(t); e != nullptr) return take_locked(e);
    pending_push_locked(&t);
  }
  block_on(t, kNoDeadline);
  return std::move(t.message);
}

bool Mailbox::receive_for(std::uint64_t comm_id, int source, int tag,
                          std::chrono::nanoseconds timeout, Message* out) {
  RecvTicket t;
  t.comm_id = comm_id;
  t.source = source;
  t.tag = tag;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
      cv_.notify_all();
    if (Envelope* e = find_match_locked(t); e != nullptr) {
      *out = take_locked(e);
      return true;
    }
    pending_push_locked(&t);
  }
  const auto deadline = (timeout == std::chrono::nanoseconds::max())
                            ? kNoDeadline
                            : Clock::now() + timeout;
  if (block_on(t, deadline)) {
    *out = std::move(t.message);
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (t.done.load(std::memory_order_relaxed)) {
    // Completion raced the timeout: the message is ours, not requeued.
    *out = std::move(t.message);
    return true;
  }
  pending_unlink_locked(&t);  // the stack ticket must not outlive this frame
  return false;
}

// --- probes -----------------------------------------------------------------

bool Mailbox::iprobe(std::uint64_t comm_id, int source, int tag, RecvStatus* status) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  std::lock_guard<std::mutex> lock(mutex_);
  if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
    cv_.notify_all();
  Envelope* e = find_match_locked(probe_ticket);
  if (e == nullptr) return false;
  if (status != nullptr) {
    status->source = e->msg.source;
    status->tag = e->msg.tag;
    status->byte_count = e->msg.payload.size();
  }
  return true;
}

RecvStatus Mailbox::probe(std::uint64_t comm_id, int source, int tag) {
  RecvStatus status;
  // A blocking probe cannot time out waiting on itself.
  const bool found = probe_for(comm_id, source, tag,
                               std::chrono::nanoseconds::max(), &status);
  MM_ASSERT(found);
  return status;
}

bool Mailbox::probe_for(std::uint64_t comm_id, int source, int tag,
                        std::chrono::nanoseconds timeout, RecvStatus* status) {
  RecvTicket probe_ticket;
  probe_ticket.comm_id = comm_id;
  probe_ticket.source = source;
  probe_ticket.tag = tag;

  const auto deadline = (timeout == std::chrono::nanoseconds::max())
                            ? kNoDeadline
                            : Clock::now() + timeout;

  obs::Pulse& pulse = obs::pulse_this_thread();

  // Locked scan: reserve-and-report the earliest visible match, if any.
  const auto scan = [&]() -> bool {
    if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
      cv_.notify_all();
    Envelope* e = find_match_locked(probe_ticket);
    if (e == nullptr) return false;
    e->reserved = true;
    e->reserved_by = std::this_thread::get_id();
    if (status != nullptr) {
      status->source = e->msg.source;
      status->tag = e->msg.tag;
      status->byte_count = e->msg.payload.size();
    }
    return true;
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (scan()) return true;
  }

  // Spin phase: poll the lanes for traffic before parking.
  const SpinPolicy& sp = spin_policy();
  if (lane_count_ > 0 && sp.enabled()) {
    for (std::uint32_t i = 0; i < sp.iterations; ++i) {
      if (lanes_nonempty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (scan()) return true;
      } else {
        spin_relax(sp, i);
      }
      if ((i & 63u) == 0) {
        pulse.beat();
        if (deadline != kNoDeadline && Clock::now() >= deadline) break;
      }
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (scan()) return true;
    const auto now = Clock::now();
    if (now >= deadline) {
      // The scan above was the post-deadline scan: a message racing the
      // deadline has already been honored.
      return false;
    }
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (scan()) {  // close the publish/park race
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    auto target = deadline;
    if (pulse.armed()) {
      const auto chunk = now + pulse.interval();
      if (chunk < target) target = chunk;
    }
    if (target == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, target);
    parked_.fetch_sub(1, std::memory_order_relaxed);
    pulse.beat();
  }
}

std::size_t Mailbox::queued() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (drain_locked() && parked_.load(std::memory_order_relaxed) > 0)
    cv_.notify_all();
  return queue_size_;
}

}  // namespace mm::mpi
