// The mmq wire format's contracts: byte-stable encoding, zero-copy
// incremental parsing at every chunk boundary, robustness against truncated /
// corrupt / duplicated / reordered input, socket round trips (TCP session and
// UDP datagram loopback), and allocation-freedom of the steady-state parse
// path (global operator-new counting — which is why this suite lives in its
// own executable, same pattern as tests/test_corr_alloc.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "wire/feed.hpp"
#include "wire/format.hpp"
#include "wire/parser.hpp"
#include "wire/quote_source.hpp"
#include "wire/socket.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mm::wire {
namespace {

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

md::Quote make_quote(int i) {
  md::Quote q;
  q.ts_ms = 1204520400000 + i;  // 2008-03-03 09:00 ET, the paper's day
  q.symbol = static_cast<md::SymbolId>(i % 7);
  q.bid = 100.0 + 0.01 * i;
  q.ask = q.bid + 0.02;
  q.bid_size = 100 + i;
  q.ask_size = 200 + i;
  return q;
}

std::vector<md::Quote> make_day(int n) {
  std::vector<md::Quote> day;
  day.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) day.push_back(make_quote(i));
  return day;
}

bool same_quote(const md::Quote& a, const md::Quote& b) {
  return a.ts_ms == b.ts_ms && a.symbol == b.symbol && a.bid == b.bid &&
         a.ask == b.ask && a.bid_size == b.bid_size && a.ask_size == b.ask_size;
}

// --- golden encoding ------------------------------------------------------

TEST(WireFormat, QuoteEncodingIsByteStable) {
  // The exact wire image of one known quote, written out by hand from the
  // format spec. If this test breaks, the protocol version must be bumped.
  md::Quote q;
  q.ts_ms = 0x0102030405060708;
  q.symbol = 0x0A0B0C0D;
  q.bid = 1.5;   // IEEE-754: 0x3FF8000000000000
  q.ask = -2.0;  // IEEE-754: 0xC000000000000000
  q.bid_size = 0x11121314;
  q.ask_size = -2;  // 0xFFFFFFFE two's complement

  FrameWriter w;
  w.quote(q);
  const std::vector<std::uint8_t> expect = {
      0x25, 0x00,  // length = 1 + 36, little-endian
      0x02,        // type = quote
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // ts_ms LE
      0x0D, 0x0C, 0x0B, 0x0A,                          // symbol LE
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,  // bid
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xC0,  // ask
      0x14, 0x13, 0x12, 0x11,                          // bid_size LE
      0xFE, 0xFF, 0xFF, 0xFF,                          // ask_size LE
  };
  EXPECT_EQ(w.bytes(), expect);
}

TEST(WireFormat, HelloEncodingIsByteStable) {
  FrameWriter w;
  w.hello(0x1122334455667788, "d", 0x0042);
  const std::vector<std::uint8_t> expect = {
      0x14, 0x00,              // length = 1 + 18 + 1
      0x01,                    // type = hello
      0x4D, 0x4D, 0x51, 0x31,  // magic "MMQ1"
      0x01, 0x00,              // version 1
      0x42, 0x00,              // flags
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // session LE
      0x01, 0x00,              // key_len
      'd',
  };
  EXPECT_EQ(w.bytes(), expect);
}

// --- round trips ----------------------------------------------------------

TEST(WireFormat, AllMessageTypesRoundTrip) {
  FrameWriter w;
  w.hello(7, "synthetic/10/1/0", 3);
  const md::Quote q = make_quote(5);
  w.quote(q);
  w.heartbeat(99);
  w.end_of_day(12345);

  FrameParser p;
  p.feed(w.bytes().data(), w.size());

  FrameView v;
  ASSERT_TRUE(p.next(&v));
  ASSERT_EQ(v.type, MsgType::hello);
  const auto hello = decode_hello(v);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello.value().session, 7u);
  EXPECT_EQ(hello.value().flags, 3u);
  EXPECT_EQ(hello.value().key, "synthetic/10/1/0");

  ASSERT_TRUE(p.next(&v));
  md::Quote back;
  ASSERT_TRUE(decode_quote(v, &back));
  EXPECT_TRUE(same_quote(back, q));

  ASSERT_TRUE(p.next(&v));
  std::uint64_t counter = 0;
  ASSERT_TRUE(decode_heartbeat(v, &counter));
  EXPECT_EQ(counter, 99u);

  ASSERT_TRUE(p.next(&v));
  std::uint64_t count = 0;
  ASSERT_TRUE(decode_end_of_day(v, &count));
  EXPECT_EQ(count, 12345u);

  EXPECT_FALSE(p.next(&v));
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(p.frames(), 4u);
}

// Feeding the stream split into two chunks at EVERY byte boundary must yield
// the identical frame sequence — the carry buffer handles any straddle.
TEST(WireParser, EveryChunkSplitYieldsIdenticalFrames) {
  FrameWriter w;
  w.hello(1, "key");
  for (int i = 0; i < 8; ++i) w.quote(make_quote(i));
  w.heartbeat(4);
  w.end_of_day(8);
  const auto& bytes = w.bytes();

  const auto parse_split = [&](std::size_t at) {
    std::vector<md::Quote> quotes;
    std::uint64_t frames = 0;
    FrameParser p;
    FrameView v;
    for (int half = 0; half < 2; ++half) {
      const std::size_t begin = half == 0 ? 0 : at;
      const std::size_t end = half == 0 ? at : bytes.size();
      p.feed(bytes.data() + begin, end - begin);
      while (p.next(&v)) {
        ++frames;
        if (v.type == MsgType::quote) {
          md::Quote q;
          EXPECT_TRUE(decode_quote(v, &q));
          quotes.push_back(q);
        }
      }
      EXPECT_FALSE(p.failed()) << "split at " << at << ": " << p.error();
    }
    EXPECT_EQ(frames, 11u) << "split at " << at;
    return quotes;
  };

  const std::vector<md::Quote> reference = parse_split(0);
  ASSERT_EQ(reference.size(), 8u);
  for (std::size_t at = 1; at <= bytes.size(); ++at) {
    const auto quotes = parse_split(at);
    ASSERT_EQ(quotes.size(), reference.size()) << "split at " << at;
    for (std::size_t i = 0; i < quotes.size(); ++i)
      EXPECT_TRUE(same_quote(quotes[i], reference[i])) << "split at " << at;
  }
}

TEST(WireParser, ByteAtATimeFeedReassembles) {
  FrameWriter w;
  for (int i = 0; i < 3; ++i) w.quote(make_quote(i));
  FrameParser p;
  FrameView v;
  int quotes = 0;
  for (const std::uint8_t byte : w.bytes()) {
    p.feed(&byte, 1);
    while (p.next(&v)) {
      md::Quote q;
      ASSERT_TRUE(decode_quote(v, &q));
      EXPECT_TRUE(same_quote(q, make_quote(quotes)));
      ++quotes;
    }
    ASSERT_FALSE(p.failed());
  }
  EXPECT_EQ(quotes, 3);
}

// --- robustness -----------------------------------------------------------

TEST(WireParser, TruncatedFinalFrameIsNotAnError) {
  FrameWriter w;
  w.quote(make_quote(0));
  w.quote(make_quote(1));
  FrameParser p;
  p.feed(w.bytes().data(), w.size() - 5);  // second frame cut short
  FrameView v;
  ASSERT_TRUE(p.next(&v));
  EXPECT_FALSE(p.next(&v));
  EXPECT_FALSE(p.failed());  // waiting for more bytes, not corrupt
  EXPECT_EQ(p.frames(), 1u);
}

TEST(WireParser, ZeroLengthFrameFails) {
  const std::uint8_t bad[] = {0x00, 0x00, 0x02};
  FrameParser p;
  p.feed(bad, sizeof(bad));
  FrameView v;
  EXPECT_FALSE(p.next(&v));
  EXPECT_TRUE(p.failed());
}

TEST(WireParser, OversizedLengthFails) {
  std::uint8_t bad[3];
  store_u16(bad, static_cast<std::uint16_t>(1 + max_body_bytes + 1));
  bad[2] = 0x02;
  FrameParser p;
  p.feed(bad, sizeof(bad));
  FrameView v;
  EXPECT_FALSE(p.next(&v));
  EXPECT_TRUE(p.failed());
}

TEST(WireParser, UnknownTypeFails) {
  const std::uint8_t bad[] = {0x01, 0x00, 0x09};
  FrameParser p;
  p.feed(bad, sizeof(bad));
  FrameView v;
  EXPECT_FALSE(p.next(&v));
  EXPECT_TRUE(p.failed());
}

TEST(WireParser, GoodFramesBeforeCorruptionAreEmitted) {
  FrameWriter w;
  w.quote(make_quote(0));
  auto bytes = w.take();
  bytes.push_back(0x01);
  bytes.push_back(0x00);
  bytes.push_back(0xFF);  // unknown type after one good frame
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  FrameView v;
  ASSERT_TRUE(p.next(&v));
  EXPECT_EQ(v.type, MsgType::quote);
  EXPECT_FALSE(p.next(&v));
  EXPECT_TRUE(p.failed());
}

TEST(WireParser, HelloGarbageMagicRejected) {
  FrameWriter w;
  w.hello(1, "key");
  auto bytes = w.take();
  bytes[3] ^= 0xFF;  // corrupt the first magic byte
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  FrameView v;
  ASSERT_TRUE(p.next(&v));  // framing is intact; the BODY is garbage
  const auto hello = decode_hello(v);
  EXPECT_FALSE(hello.has_value());
}

TEST(WireParser, DecodersRejectWrongTypeAndSize) {
  FrameWriter w;
  w.heartbeat(1);
  FrameParser p;
  p.feed(w.bytes().data(), w.size());
  FrameView v;
  ASSERT_TRUE(p.next(&v));
  md::Quote q;
  EXPECT_FALSE(decode_quote(v, &q));  // wrong type
  std::uint64_t count = 0;
  EXPECT_FALSE(decode_end_of_day(v, &count));
  EXPECT_TRUE(decode_heartbeat(v, &count));

  FrameView short_view = v;
  short_view.size = 4;  // right type, truncated body
  EXPECT_FALSE(decode_heartbeat(short_view, &count));
}

TEST(WireFormat, DatagramHeaderRoundTripAndRejection) {
  std::vector<std::uint8_t> buf;
  start_datagram(buf, 42, 1000);
  finish_datagram(buf, 3);
  const auto header = parse_datagram_header(buf.data(), buf.size());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header.value().session, 42u);
  EXPECT_EQ(header.value().first_seq, 1000u);
  EXPECT_EQ(header.value().msg_count, 3u);

  EXPECT_FALSE(parse_datagram_header(buf.data(), 10).has_value());  // short
  buf[0] ^= 0xFF;
  EXPECT_FALSE(parse_datagram_header(buf.data(), buf.size()).has_value());
}

// --- UDP sequencing -------------------------------------------------------

TEST(SequenceTracker, DuplicateReorderOverlapAndGap) {
  SequenceTracker t;
  EXPECT_EQ(t.accept(0, 4), 4u);   // in order
  EXPECT_EQ(t.accept(0, 4), 0u);   // exact duplicate
  EXPECT_EQ(t.stale(), 1u);
  EXPECT_EQ(t.accept(2, 4), 2u);   // partial retransmit: tail is new
  EXPECT_EQ(t.overlaps(), 1u);
  EXPECT_EQ(t.accept(10, 2), 2u);  // jump forward: gap of 4 messages
  EXPECT_EQ(t.gaps(), 1u);
  EXPECT_EQ(t.gap_messages(), 4u);
  EXPECT_EQ(t.accept(6, 4), 0u);   // the straggler arrives late: stale
  EXPECT_EQ(t.stale(), 2u);
  EXPECT_EQ(t.expected_next(), 12u);
}

// Craft datagrams by hand and deliver them duplicated and out of order; the
// receiver must absorb both and report the damage.
TEST(WireUdp, ReceiverAbsorbsDuplicatesAndReordering) {
  UdpReceiver receiver;
  ASSERT_TRUE(receiver.bind().has_value());
  const auto day = make_day(6);

  const auto datagram = [&](std::uint64_t first_seq,
                            std::vector<int> quote_indices, bool eod) {
    std::vector<std::uint8_t> buf;
    start_datagram(buf, 1, first_seq);
    FrameWriter w;
    for (const int i : quote_indices) w.quote(day[static_cast<std::size_t>(i)]);
    if (eod) w.end_of_day(day.size());
    buf.insert(buf.end(), w.bytes().begin(), w.bytes().end());
    finish_datagram(buf, static_cast<std::uint16_t>(quote_indices.size() +
                                                    (eod ? 1 : 0)));
    return buf;
  };

  auto sender = udp_connect("127.0.0.1", receiver.port());
  ASSERT_TRUE(sender.has_value());
  const auto send = [&](const std::vector<std::uint8_t>& buf) {
    ASSERT_TRUE(udp_send(sender.value(), buf.data(), buf.size()).has_value());
  };

  const auto d0 = datagram(0, {0, 1}, false);
  const auto d1 = datagram(2, {2, 3}, false);
  const auto d2 = datagram(4, {4, 5}, false);
  const auto d3 = datagram(6, {}, true);
  send(d0);
  send(d2);  // reordered ahead of d1
  send(d1);  // arrives late -> stale (its slot was skipped)
  send(d0);  // pure duplicate
  send(d3);

  const auto got = receiver.receive_day();
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  // d1's quotes were lost to the reorder-gap; everything else in order once.
  ASSERT_EQ(got.value().size(), 4u);
  EXPECT_TRUE(same_quote(got.value()[0], day[0]));
  EXPECT_TRUE(same_quote(got.value()[1], day[1]));
  EXPECT_TRUE(same_quote(got.value()[2], day[4]));
  EXPECT_TRUE(same_quote(got.value()[3], day[5]));
  EXPECT_EQ(receiver.stats().stale_datagrams, 2u);
  EXPECT_EQ(receiver.stats().gaps, 1u);
  EXPECT_EQ(receiver.stats().gap_messages, 2u);
}

TEST(WireUdp, PublisherToReceiverLoopbackDeliversTheDay) {
  UdpReceiver receiver;
  ASSERT_TRUE(receiver.bind().has_value());
  const auto day = make_day(100);

  UdpPublisher publisher("127.0.0.1", receiver.port());
  ASSERT_TRUE(publisher.publish_day(7, day).has_value());
  EXPECT_GT(publisher.datagrams_sent(), 1u);

  const auto got = receiver.receive_day();
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  ASSERT_EQ(got.value().size(), day.size());
  for (std::size_t i = 0; i < day.size(); ++i)
    EXPECT_TRUE(same_quote(got.value()[i], day[i]));
  EXPECT_EQ(receiver.stats().gaps, 0u);
  EXPECT_EQ(receiver.stats().quotes, day.size());
}

// --- TCP session ----------------------------------------------------------

TEST(WireTcp, QuoteSourceStreamsTheSubscribedDay) {
  const auto day = make_day(500);
  TcpFeedConfig config;
  config.heartbeat_every = 100;  // interleave heartbeats inside a short day
  TcpFeedServer server(
      [&](const std::string& key) -> Expected<std::vector<md::Quote>> {
        if (key != "day-key") return Error(Errc::not_found, "unknown key " + key);
        return day;
      },
      config);
  ASSERT_TRUE(server.start().has_value());

  auto source = WireQuoteSource::connect("127.0.0.1", server.port(), "day-key");
  ASSERT_TRUE(source.has_value()) << source.error().to_string();
  std::vector<md::Quote> got;
  while (const auto q = source.value()->next()) got.push_back(*q);
  EXPECT_TRUE(source.value()->done());
  EXPECT_FALSE(source.value()->failed()) << source.value()->error();
  ASSERT_EQ(got.size(), day.size());
  for (std::size_t i = 0; i < day.size(); ++i)
    EXPECT_TRUE(same_quote(got[i], day[i]));
  EXPECT_GT(source.value()->stats().heartbeats, 0u);
  server.stop();
}

TEST(WireTcp, FetchDayMatchesAndUnknownKeyFails) {
  const auto day = make_day(64);
  TcpFeedServer server([&](const std::string& key)
                           -> Expected<std::vector<md::Quote>> {
    if (key != "good") return Error(Errc::not_found, "unknown key " + key);
    return day;
  });
  ASSERT_TRUE(server.start().has_value());

  const auto got = fetch_day("127.0.0.1", server.port(), "good");
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  ASSERT_EQ(got.value().size(), day.size());
  for (std::size_t i = 0; i < day.size(); ++i)
    EXPECT_TRUE(same_quote(got.value()[i], day[i]));

  EXPECT_FALSE(fetch_day("127.0.0.1", server.port(), "missing").has_value());
  // Only successfully streamed days count as served sessions; the rejected
  // key closes without end_of_day and is not counted.
  EXPECT_EQ(server.sessions_served(), 1u);
  server.stop();
}

// --- allocation freedom ---------------------------------------------------

// Parsing + decoding a pre-encoded stream in chunks performs ZERO heap
// allocations: views point into the fed buffer, straddles land in the fixed
// carry buffer, decode fills caller-owned out-params.
TEST(WireAlloc, SteadyStateParseIsAllocationFree) {
  FrameWriter w;
  constexpr int kQuotes = 4096;
  for (int i = 0; i < kQuotes; ++i) w.quote(make_quote(i));
  const auto& bytes = w.bytes();

  FrameParser parser;
  {
    // Warm the parser (sizes the carry buffer) on a prefix with a straddle.
    FrameView v;
    parser.feed(bytes.data(), 41);
    while (parser.next(&v)) {
    }
  }

  FrameParser p;  // fresh parser, but its carry is allocated at construction
  const std::size_t chunk = 1499;  // never frame-aligned: constant straddling
  md::Quote q;
  FrameView v;
  std::uint64_t decoded = 0;

  const auto before = allocations();
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - at);
    p.feed(bytes.data() + at, n);
    while (p.next(&v)) {
      ASSERT_TRUE(decode_quote(v, &q));
      ++decoded;
    }
    ASSERT_FALSE(p.failed());
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(decoded, static_cast<std::uint64_t>(kQuotes));
}

// Encoding into a warmed FrameWriter is likewise allocation-free.
TEST(WireAlloc, SteadyStateEncodeIsAllocationFree) {
  FrameWriter w;
  for (int i = 0; i < 1024; ++i) w.quote(make_quote(i));
  w.clear();  // keeps capacity

  const auto before = allocations();
  for (int i = 0; i < 1024; ++i) w.quote(make_quote(i));
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
}  // namespace mm::wire
