// Byte-level serialization for message payloads.
//
// Packer appends POD values, strings and vectors to a byte buffer; Unpacker
// reads them back in the same order. Used by dagflow's typed ports and the
// engine's inter-component records. All encoding is native-endian — mpmini
// ranks live in a single process, so there is no cross-architecture concern
// (a real-MPI port would swap this layer for MPI datatypes).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace mm::mpi {

class Packer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put requires a trivially copyable type");
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(s.data());
    buffer_.insert(buffer_.end(), bytes, bytes + s.size());
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_vector requires trivially copyable elements");
    put<std::uint64_t>(v.size());
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data());
    buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(T));
  }

  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class Unpacker {
 public:
  explicit Unpacker(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get requires a trivially copyable type");
    MM_ASSERT_MSG(offset_ + sizeof(T) <= buffer_.size(), "Unpacker: payload underrun");
    T value;
    std::memcpy(&value, buffer_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    MM_ASSERT_MSG(offset_ + n <= buffer_.size(), "Unpacker: string underrun");
    std::string s(reinterpret_cast<const char*>(buffer_.data() + offset_), n);
    offset_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get_vector requires trivially copyable elements");
    const auto n = get<std::uint64_t>();
    MM_ASSERT_MSG(offset_ + n * sizeof(T) <= buffer_.size(), "Unpacker: vector underrun");
    std::vector<T> v(n);
    std::memcpy(v.data(), buffer_.data() + offset_, n * sizeof(T));
    offset_ += n * sizeof(T);
    return v;
  }

  bool exhausted() const { return offset_ == buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - offset_; }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t offset_ = 0;
};

}  // namespace mm::mpi
