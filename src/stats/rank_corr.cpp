#include "stats/rank_corr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "stats/pearson.hpp"

namespace mm::stats {

std::vector<double> average_ranks(const double* x, std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Positions i..j share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(const double* x, const double* y, std::size_t n) {
  MM_ASSERT_MSG(n >= 2, "spearman needs n >= 2");
  const auto rx = average_ranks(x, n);
  const auto ry = average_ranks(y, n);
  return pearson(rx.data(), ry.data(), n);
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  MM_ASSERT_MSG(x.size() == y.size(), "spearman: length mismatch");
  return spearman(x.data(), y.data(), x.size());
}

double kendall_tau(const double* x, const double* y, std::size_t n) {
  MM_ASSERT_MSG(n >= 2, "kendall needs n >= 2");
  std::int64_t concordant = 0, discordant = 0;
  std::int64_t ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;  // joint tie: excluded from both
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(concordant + discordant);
  const double denom = std::sqrt((n0 + static_cast<double>(ties_x)) *
                                 (n0 + static_cast<double>(ties_y)));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double kendall_tau(const std::vector<double>& x, const std::vector<double>& y) {
  MM_ASSERT_MSG(x.size() == y.size(), "kendall: length mismatch");
  return kendall_tau(x.data(), y.data(), x.size());
}

}  // namespace mm::stats
