// Shared flag handling for the experiment-driven repro binaries
// (Tables III-V, Figure 2): a common CLI and config builder so every table is
// regenerated from the identical experiment definition.
#pragma once

#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"

namespace mm::bench {

// Registers the shared experiment flags, parses argv and builds the config.
inline core::ExperimentConfig build_config(Cli& cli, int argc, char** argv) {
  auto& symbols = cli.add_int("symbols", 20, "universe size (2..61)");
  auto& days = cli.add_int("days", 5, "trading days starting 2008-03-03");
  auto& seed = cli.add_int("seed", 20080303, "generator seed");
  auto& ranks = cli.add_int("ranks", 4, "mpmini ranks for the pair fan-out");
  auto& full = cli.add_flag("full", "paper scale: 61 symbols, 20 days");
  cli.parse(argc, argv);

  core::ExperimentConfig cfg;
  cfg.symbols = static_cast<std::size_t>(full ? 61 : symbols);
  cfg.days = static_cast<int>(full ? 20 : days);
  cfg.generator.seed = static_cast<std::uint64_t>(seed);
  cfg.ranks = static_cast<int>(ranks);
  return cfg;
}

inline core::ExperimentResult run_with_banner(const core::ExperimentConfig& cfg,
                                              const char* what) {
  std::printf("%s\n", what);
  std::printf("experiment: %zu symbols (%zu pairs), %d days, "
              "14 levels x 3 correlation types = 42 strategies, %d ranks\n\n",
              cfg.symbols, cfg.symbols * (cfg.symbols - 1) / 2, cfg.days, cfg.ranks);
  auto result = cfg.ranks > 1 ? core::run_experiment_parallel(cfg)
                              : core::run_experiment(cfg);
  std::printf("ran %llu trades over %zu quotes (%zu dropped by cleaning) "
              "in %.1f s\n\n",
              static_cast<unsigned long long>(result.total_trades),
              result.quotes_processed, result.quotes_dropped, result.wall_seconds);
  return result;
}

}  // namespace mm::bench
